"""Bucketization: the paper's sanitization method (Section 2.1).

A bucketization partitions the table's tuples into buckets and, within each
bucket, randomly permutes the sensitive column. What the attacker learns from
the published data is therefore, per bucket, the *multiset* of sensitive
values and (under full identification information) the set of people in the
bucket — exactly what :class:`repro.bucketization.bucket.Bucket` records.

Partitioning strategies live in :mod:`repro.bucketization.partition`;
:mod:`repro.bucketization.anatomy` implements the Anatomy-style partitioner
cited by the paper as the bucketization it matches.
"""

from repro.bucketization.bucket import Bucket
from repro.bucketization.bucketization import Bucketization
from repro.bucketization.anatomy import anatomize
from repro.bucketization.mondrian import mondrian_partition
from repro.bucketization.partition import (
    partition_by_attribute,
    partition_by_qi,
    partition_into_chunks,
)
from repro.bucketization.suppression import SuppressionResult, suppress_to_safety
from repro.bucketization.swapping import SwapResult, swap_sensitive_values

__all__ = [
    "Bucket",
    "Bucketization",
    "anatomize",
    "mondrian_partition",
    "partition_by_qi",
    "partition_by_attribute",
    "partition_into_chunks",
    "suppress_to_safety",
    "SuppressionResult",
    "swap_sensitive_values",
    "SwapResult",
]
