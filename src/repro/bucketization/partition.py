"""Partitioning strategies that produce bucketizations from tables.

These are thin, composable helpers over
:meth:`repro.bucketization.bucketization.Bucketization.from_table`:

- :func:`partition_by_qi` — one bucket per quasi-identifier equivalence class
  (what full-domain generalization induces).
- :func:`partition_by_attribute` — one bucket per value of a single attribute.
- :func:`partition_into_chunks` — fixed-size buckets in row order (the
  simplest k-anonymous bucketization, useful as a baseline).
"""

from __future__ import annotations

from repro.bucketization.bucket import Bucket
from repro.bucketization.bucketization import Bucketization
from repro.data.table import Table

__all__ = [
    "partition_by_qi",
    "partition_by_attribute",
    "partition_into_chunks",
]


def partition_by_qi(table: Table) -> Bucketization:
    """One bucket per distinct quasi-identifier tuple."""
    return Bucketization.from_table(table)


def partition_by_attribute(table: Table, attribute: str) -> Bucketization:
    """One bucket per distinct value of ``attribute``."""
    if attribute not in table.schema.attributes:
        raise ValueError(f"unknown attribute {attribute!r}")
    return Bucketization.from_table(table, key=lambda record: record[attribute])


def partition_into_chunks(table: Table, chunk_size: int) -> Bucketization:
    """Consecutive buckets of ``chunk_size`` rows (last one may be smaller).

    Guarantees every bucket has at least one tuple; ``chunk_size`` must be
    positive.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    table.require_nonempty()
    sensitive = table.schema.sensitive
    pids = table.person_ids
    buckets = []
    for start in range(0, len(table), chunk_size):
        stop = min(start + chunk_size, len(table))
        buckets.append(
            Bucket(
                pids[start:stop],
                [table[i][sensitive] for i in range(start, stop)],
            )
        )
    return Bucketization(buckets)
