"""Anatomy-style bucketization (Xiao & Tao, VLDB 2006).

The paper notes that Anatomy "corresponds exactly to the notion of
bucketization that we use". Anatomy's partitioner greedily forms buckets of
``ell`` tuples with *pairwise distinct* sensitive values, which guarantees
every bucket's top frequency is 1 — i.e. distinct ℓ-diversity — whenever the
eligibility condition holds (no value occurs in more than ``n/ell`` tuples).

This is the strongest baseline partitioner the library ships: it minimizes
the zero-knowledge disclosure ``max_b n_b(s_b^0)/n_b`` for a given bucket
size, and gives (c,k)-safety checks something non-trivial to certify.
"""

from __future__ import annotations

import heapq
from collections import defaultdict

from repro.bucketization.bucket import Bucket
from repro.bucketization.bucketization import Bucketization
from repro.data.table import Table
from repro.errors import EmptyTableError

__all__ = ["anatomize", "anatomy_eligible"]


def anatomy_eligible(table: Table, ell: int) -> bool:
    """True iff Anatomy's eligibility condition holds: every sensitive value
    occurs in at most ``ceil(n / ell)`` tuples... strictly, ``n/ell`` — we use
    the exact check from the Anatomy paper: ``max_s count(s) <= n / ell``.
    """
    if ell <= 0:
        raise ValueError(f"ell must be positive, got {ell}")
    histogram = table.sensitive_histogram()
    if not histogram:
        raise EmptyTableError("cannot anatomize an empty table")
    return max(histogram.values()) <= len(table) / ell


def anatomize(table: Table, ell: int) -> Bucketization:
    """Partition ``table`` into buckets of ``ell`` distinct sensitive values.

    Implements Anatomy's group-creation step: repeatedly pick the ``ell``
    sensitive values with the most remaining tuples and emit one tuple of
    each as a bucket. Leftover tuples (fewer than ``ell`` values remain) are
    appended to existing buckets that do not yet contain their value; this is
    the Anatomy "residue" assignment.

    Raises
    ------
    ValueError
        If the eligibility condition fails (some value is too frequent) or
        ``ell`` exceeds the number of distinct sensitive values.
    """
    if not anatomy_eligible(table, ell):
        raise ValueError(
            f"table is not eligible for {ell}-anatomy: a sensitive value "
            f"occurs in more than n/{ell} tuples"
        )
    sensitive = table.schema.sensitive
    remaining: dict[object, list] = defaultdict(list)
    for pid, record in zip(table.person_ids, table.rows):
        remaining[record[sensitive]].append(pid)
    if len(remaining) < ell:
        raise ValueError(
            f"only {len(remaining)} distinct sensitive values; cannot form "
            f"buckets of {ell} distinct values"
        )

    # Max-heap of (-(remaining count), value) for the greedy selection.
    heap = [(-len(pids), repr(value), value) for value, pids in remaining.items()]
    heapq.heapify(heap)

    groups: list[tuple[list, list]] = []  # (person_ids, values)
    while True:
        popped = []
        while heap and len(popped) < ell:
            count, _, value = heapq.heappop(heap)
            if -count != len(remaining[value]):  # stale entry
                continue
            if remaining[value]:
                popped.append(value)
        if len(popped) < ell:
            # Push back what we popped; move to residue assignment.
            for value in popped:
                heapq.heappush(heap, (-len(remaining[value]), repr(value), value))
            break
        pids, values = [], []
        for value in popped:
            pids.append(remaining[value].pop())
            values.append(value)
            if remaining[value]:
                heapq.heappush(heap, (-len(remaining[value]), repr(value), value))
        groups.append((pids, values))

    # Residue: at most ell-1 values still have tuples; eligibility guarantees
    # each has at most one tuple left and enough groups exist to host them.
    for value, pids in remaining.items():
        for pid in list(pids):
            host = next(
                (g for g in groups if value not in g[1]),
                None,
            )
            if host is None:
                raise ValueError(
                    "anatomy residue assignment failed; table too small "
                    f"for ell={ell}"
                )
            host[0].append(pid)
            host[1].append(value)
            pids.remove(pid)

    return Bucketization(Bucket(pids, values) for pids, values in groups)
