"""A single bucket of a bucketization.

Using the paper's notation for a bucket ``b``:

- ``P_b``  — the people whose tuples landed in ``b`` (:attr:`Bucket.person_ids`),
- ``n_b``  — the number of tuples (:attr:`Bucket.size`),
- ``n_b(s)`` — the frequency of sensitive value ``s`` (:meth:`Bucket.frequency`),
- ``s_b^0, s_b^1, ...`` — sensitive values in decreasing frequency order
  (:attr:`Bucket.values_by_frequency`).

The disclosure algorithms depend on a bucket only through its sorted frequency
vector, exposed as :attr:`Bucket.signature` and used as a memoization key.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Sequence
from typing import Any

from repro.errors import EmptyTableError

__all__ = ["Bucket"]


class Bucket:
    """An immutable bucket: person ids plus the multiset of sensitive values.

    Parameters
    ----------
    person_ids:
        The people in the bucket (``P_b``); must be distinct.
    sensitive_values:
        The bucket's sensitive multiset, one value per person. Order carries
        no information (the published permutation is random); it is retained
        only for round-tripping.

    Examples
    --------
    >>> b = Bucket(["Bob", "Charlie", "Dave", "Ed", "Frank"],
    ...            ["Flu", "Flu", "Lung Cancer", "Lung Cancer", "Mumps"])
    >>> b.size, b.frequency("Flu"), b.values_by_frequency[0]
    (5, 2, 'Flu')
    >>> b.signature
    (2, 2, 1)
    """

    __slots__ = (
        "_person_ids",
        "_values",
        "_counts",
        "_by_frequency",
        "_signature",
    )

    def __init__(
        self, person_ids: Iterable[Any], sensitive_values: Iterable[Any]
    ) -> None:
        pids = tuple(person_ids)
        values = tuple(sensitive_values)
        if not pids:
            raise EmptyTableError("a bucket must contain at least one tuple")
        if len(pids) != len(values):
            raise ValueError(
                f"{len(pids)} person ids but {len(values)} sensitive values"
            )
        if len(set(pids)) != len(pids):
            raise ValueError("person ids within a bucket must be distinct")
        self._person_ids = pids
        self._values = values
        counts = Counter(values)
        self._counts = counts
        # Deterministic order: by descending frequency, ties broken by repr.
        self._by_frequency = tuple(
            value
            for value, _ in sorted(
                counts.items(), key=lambda item: (-item[1], repr(item[0]))
            )
        )
        self._signature = tuple(
            counts[value] for value in self._by_frequency
        )

    # ------------------------------------------------------------------
    # Paper notation
    # ------------------------------------------------------------------
    @property
    def person_ids(self) -> tuple[Any, ...]:
        """``P_b``: the people in this bucket."""
        return self._person_ids

    @property
    def size(self) -> int:
        """``n_b``: number of tuples in the bucket."""
        return len(self._values)

    def frequency(self, value: Any) -> int:
        """``n_b(s)``: how many tuples carry sensitive value ``value``."""
        return self._counts.get(value, 0)

    @property
    def values_by_frequency(self) -> tuple[Any, ...]:
        """``s_b^0, s_b^1, ...``: distinct values, most frequent first."""
        return self._by_frequency

    @property
    def signature(self) -> tuple[int, ...]:
        """Frequencies in descending order — the histogram shape.

        Two buckets with equal signatures are interchangeable for every
        worst-case disclosure computation, which makes this the global
        memoization key for MINIMIZE1.
        """
        return self._signature

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    @property
    def sensitive_values(self) -> tuple[Any, ...]:
        """The raw multiset of sensitive values (arbitrary published order)."""
        return self._values

    @property
    def counts(self) -> Counter:
        """Value -> frequency for this bucket."""
        return Counter(self._counts)

    @property
    def distinct_count(self) -> int:
        """Number of distinct sensitive values in the bucket."""
        return len(self._counts)

    @property
    def top_frequency(self) -> int:
        """``n_b(s_b^0)``: frequency of the most frequent value."""
        return self._signature[0]

    @property
    def top_value(self) -> Any:
        """``s_b^0``: the most frequent sensitive value."""
        return self._by_frequency[0]

    def entropy(self, *, base: float = math.e) -> float:
        """Shannon entropy of the bucket's sensitive distribution.

        The paper's Figure 6 uses this with the natural logarithm (its x-axis
        tops out below ln 14 ~ 2.64 for the 14-value Occupation domain).
        """
        n = self.size
        h = 0.0
        for count in self._signature:
            p = count / n
            h -= p * math.log(p)
        if base != math.e:
            h /= math.log(base)
        # Guard against -0.0 from single-value buckets.
        return abs(h) if h == 0 else h

    def top_fraction(self) -> float:
        """``n_b(s_b^0) / n_b``: the zero-knowledge disclosure of this bucket."""
        return self.top_frequency / self.size

    def merge(self, other: "Bucket") -> "Bucket":
        """Union of two buckets (used to move *up* the paper's partial order).

        Raises
        ------
        ValueError
            If the buckets share a person.
        """
        return Bucket(
            self._person_ids + other._person_ids, self._values + other._values
        )

    @classmethod
    def from_values(cls, sensitive_values: Sequence[Any]) -> "Bucket":
        """Bucket with anonymous integer person ids ``0..n-1`` (handy in tests)."""
        return cls(range(len(tuple(sensitive_values))), sensitive_values)

    @classmethod
    def from_signature(
        cls, signature: Sequence[int], *, start_id: int = 0
    ) -> "Bucket":
        """A synthetic bucket realizing ``signature`` with placeholder values.

        Person ids (``start_id..``) and value labels (``s0, s1, ...``) carry
        no information: every signature-decomposable computation — all of the
        paper's worst-case algorithms — is invariant to them, which is what
        lets the signature plane rebuild an evaluation-equivalent bucket from
        an interned signature (e.g. inside a worker process).

        Examples
        --------
        >>> Bucket.from_signature((2, 1)).signature
        (2, 1)
        """
        counts = tuple(signature)
        if any(a < b for a, b in zip(counts, counts[1:])):
            raise ValueError(f"signature must be non-increasing: {counts}")
        values = [
            f"s{index}" for index, count in enumerate(counts) for _ in range(count)
        ]
        return cls(range(start_id, start_id + len(values)), values)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bucket):
            return NotImplemented
        return (
            self._person_ids == other._person_ids
            and self._counts == other._counts
        )

    def __hash__(self) -> int:
        return hash((self._person_ids, self._signature))

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{value!r}:{self._counts[value]}" for value in self._by_frequency
        )
        return f"Bucket(n={self.size}, {{{pairs}}})"
