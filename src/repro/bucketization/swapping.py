"""Data swapping (Dalenius & Reiss, 1982) — the paper's Section-2.1/6 future work.

Data swapping exchanges sensitive values between tuples so that marginal
totals are preserved while individual linkages are broken. The paper points
out that swapping "like bucketization, also permutes the sensitive values,
but in more complex ways", and defers its analysis to future work.

This module implements the classical *rank-free random swap* within swap
groups: choose a grouping of the tuples, and within each group apply a
uniformly random derangement-or-identity permutation of sensitive values.
Its privacy characterization under our framework is immediate and is what
the tests check:

- if the attacker knows only the *published* table (swapped values in
  place), the correct conservative model is the induced **bucketization** of
  the swap groups (any within-group assignment is possible), so
  ``to_bucketization`` hands the result to the standard (c,k)-safety
  machinery;
- a swap that stays within QI-equivalence classes is therefore *exactly* as
  private as the corresponding bucketization — Theorem 14 and the disclosure
  algorithms apply unchanged.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from typing import Any

from repro.bucketization.bucket import Bucket
from repro.bucketization.bucketization import Bucketization
from repro.data.table import Table

__all__ = ["SwapResult", "swap_sensitive_values"]


class SwapResult:
    """Outcome of a data swap: the published table plus its analysis model.

    Attributes
    ----------
    table:
        The published table (sensitive values permuted within swap groups).
    groups:
        The swap groups as lists of person ids.
    swapped_count:
        Number of tuples whose sensitive value actually changed.
    """

    __slots__ = ("table", "groups", "swapped_count")

    def __init__(
        self, table: Table, groups: list[list[Any]], swapped_count: int
    ) -> None:
        self.table = table
        self.groups = groups
        self.swapped_count = swapped_count

    def to_bucketization(self) -> Bucketization:
        """The conservative attacker model: one bucket per swap group.

        Against an attacker with full identification information, the swap
        reveals exactly the within-group multiset of sensitive values —
        the same information a bucketization reveals — so worst-case
        disclosure of the swap equals that of this bucketization.
        """
        sensitive = self.table.schema.sensitive
        buckets = []
        for group in self.groups:
            values = [self.table.record_of(pid)[sensitive] for pid in group]
            buckets.append(Bucket(group, values))
        return Bucketization(buckets)


def swap_sensitive_values(
    table: Table,
    *,
    group_key: Callable[[dict], Any] | None = None,
    group_size: int | None = None,
    seed: int = 0,
) -> SwapResult:
    """Randomly permute sensitive values within swap groups.

    Exactly one of ``group_key`` and ``group_size`` selects the grouping:

    - ``group_key``: records with equal keys form a group (e.g. the QI tuple
      to mimic bucketization, or a coarser function for stronger swapping);
    - ``group_size``: consecutive groups of that size in row order (the
      classical blocked swap).

    Marginal totals of the sensitive attribute are preserved exactly, both
    globally and per group.

    Examples
    --------
    >>> from repro.data import Schema, Table
    >>> t = Table([{"z": 1, "d": "a"}, {"z": 1, "d": "b"}],
    ...           Schema(("z",), "d"))
    >>> result = swap_sensitive_values(t, group_size=2, seed=1)
    >>> sorted(r["d"] for r in result.table)
    ['a', 'b']
    """
    if (group_key is None) == (group_size is None):
        raise ValueError("pass exactly one of group_key or group_size")
    table.require_nonempty()
    rng = random.Random(seed)
    sensitive = table.schema.sensitive

    groups: list[list[Any]] = []
    if group_size is not None:
        if group_size <= 0:
            raise ValueError(f"group_size must be positive, got {group_size}")
        pids = list(table.person_ids)
        for start in range(0, len(pids), group_size):
            groups.append(pids[start : start + group_size])
    else:
        keyed: dict[Any, list[Any]] = {}
        for pid, record in zip(table.person_ids, table.rows):
            keyed.setdefault(group_key(record), []).append(pid)
        groups = [keyed[key] for key in sorted(keyed, key=repr)]

    new_value: dict[Any, Any] = {}
    swapped = 0
    for group in groups:
        values = [table.record_of(pid)[sensitive] for pid in group]
        permuted = list(values)
        rng.shuffle(permuted)
        for pid, old, new in zip(group, values, permuted):
            new_value[pid] = new
            if new != old:
                swapped += 1

    rows = []
    for pid, record in zip(table.person_ids, table.rows):
        clone = dict(record)
        clone[sensitive] = new_value[pid]
        rows.append(clone)
    return SwapResult(Table(rows, table.schema), groups, swapped)
