"""Mondrian-style multidimensional partitioning (LeFevre et al., 2006).

Full-domain generalization (Section 3.4's lattice) coarsens every tuple
identically. Multidimensional schemes instead split the data adaptively:
recursively cut the QI space at a median until further cuts would violate
the privacy predicate. Mondrian is the standard such partitioner for
k-anonymity; here the stopping predicate is pluggable, so the same recursion
produces (c,k)-safe partitions — the natural "better utility than the
lattice" companion the paper's framework invites.

The produced object is an ordinary :class:`~repro.bucketization.bucketization.Bucketization`
(one bucket per leaf region), so all disclosure machinery applies. Safety
predicates must be *anti-monotone under splitting* for the greedy recursion
to be sound in the strong sense (every leaf satisfies the predicate because
we only accept splits whose **both** halves satisfy it — this holds for any
predicate, monotone or not, since unsplittable regions are left whole).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import Any

from repro.bucketization.bucket import Bucket
from repro.bucketization.bucketization import Bucketization
from repro.data.table import Table

__all__ = ["mondrian_partition"]


def _median_split(
    records: list[tuple[Any, dict]], attribute: str
) -> tuple[list, list] | None:
    """Split at the median of ``attribute``; ``None`` if all values equal.

    Values sort by ``(type-name, value)`` so mixed int/str QIs stay
    comparable; ties go left so both sides are non-empty whenever at least
    two distinct values exist.
    """
    def sort_key(item):
        value = item[1][attribute]
        return (type(value).__name__, value)

    ordered = sorted(records, key=sort_key)
    values = [item[1][attribute] for item in ordered]
    if values[0] == values[-1]:
        return None
    middle = len(ordered) // 2
    pivot = values[middle]
    # Put everything strictly below the pivot value left; if that empties the
    # left side (pivot is the minimum), put the pivot class itself left.
    left = [item for item in ordered if sort_key(item) < (type(pivot).__name__, pivot)]
    if not left:
        left = [item for item in ordered if item[1][attribute] == pivot]
    right = [item for item in ordered if item not in left]
    if not left or not right:
        return None
    return left, right


def mondrian_partition(
    table: Table,
    is_acceptable: Callable[[Bucket], bool],
    *,
    attributes: Sequence[str] | None = None,
) -> Bucketization:
    """Recursively split ``table`` into the finest buckets that satisfy
    ``is_acceptable``.

    Parameters
    ----------
    is_acceptable:
        Predicate on candidate buckets; a split is taken only when **both**
        halves are acceptable (e.g. ``lambda b: b.size >= k`` for
        k-anonymity, or a per-bucket (c,k)-safety bound via
        ``Minimize1Solver``).
    attributes:
        QI attributes considered for cuts (default: all of the schema's).

    Returns
    -------
    Bucketization
        One bucket per leaf region. The root must itself be acceptable.

    Raises
    ------
    ValueError
        If even the whole table fails ``is_acceptable``.

    Examples
    --------
    >>> from repro.data import Schema, Table
    >>> t = Table([{"a": i, "d": "xy"[i % 2]} for i in range(8)],
    ...           Schema(("a",), "d"))
    >>> b = mondrian_partition(t, lambda bucket: bucket.size >= 4)
    >>> sorted(bucket.size for bucket in b)
    [4, 4]
    """
    table.require_nonempty()
    schema = table.schema
    qi = tuple(attributes) if attributes is not None else schema.quasi_identifiers
    unknown = [a for a in qi if a not in schema.quasi_identifiers]
    if unknown:
        raise ValueError(f"not quasi-identifiers: {unknown}")

    sensitive = schema.sensitive
    records = list(zip(table.person_ids, table.rows))

    def to_bucket(group: list[tuple[Any, dict]]) -> Bucket:
        return Bucket(
            [pid for pid, _ in group], [r[sensitive] for _, r in group]
        )

    root = to_bucket(records)
    if not is_acceptable(root):
        raise ValueError(
            "the whole table fails the acceptability predicate; nothing to "
            "publish at any granularity"
        )

    leaves: list[Bucket] = []

    def recurse(group: list[tuple[Any, dict]]) -> None:
        # Try attributes in round-robin order of spread: widest first.
        def spread(attribute: str) -> int:
            return len({r[attribute] for _, r in group})

        for attribute in sorted(qi, key=spread, reverse=True):
            split = _median_split(group, attribute)
            if split is None:
                continue
            left, right = split
            if is_acceptable(to_bucket(left)) and is_acceptable(
                to_bucket(right)
            ):
                recurse(left)
                recurse(right)
                return
        leaves.append(to_bucket(group))

    recurse(records)
    return Bucketization(leaves)
