"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "EmptyTableError",
    "InconsistentWorldError",
    "HierarchyError",
    "LatticeError",
    "SearchError",
    "UnknownAdversaryError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """A table, record, or formula does not match the declared schema."""


class EmptyTableError(ReproError):
    """An operation that requires at least one tuple was given none."""


class InconsistentWorldError(ReproError):
    """A conditioning event has probability zero under the random-worlds model.

    Raised by the exact engine when asked for ``Pr(event | condition)`` and no
    world consistent with the bucketization satisfies ``condition``.
    """


class HierarchyError(ReproError):
    """A generalization hierarchy is malformed or cannot map a value."""


class LatticeError(ReproError):
    """A generalization-lattice node is out of range or malformed."""


class SearchError(ReproError):
    """A lattice search failed, e.g. no safe node exists in the lattice."""


class UnknownAdversaryError(ReproError):
    """An adversary-model name was not found in the engine registry."""
