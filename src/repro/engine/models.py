"""The built-in adversary models: the paper's languages as registry plugins.

Each class here is a thin, behavior-preserving wrapper around an existing
algorithm in :mod:`repro.core` — the engine tests assert byte-identical
agreement with the legacy functions. What the wrappers add is the uniform
protocol (shared solver, cache keys, witnesses, ``worst_bucket`` for
sanitizers) that lets every consumer treat the adversary as a parameter.

==============  =====================================================  ======
name            language / legacy algorithm                            exact?
==============  =====================================================  ======
implication     ``L^k_basic`` (Definition 6; MINIMIZE1/2 DP)           yes
negation        ``k`` negated atoms (ℓ-diversity; closed form)         yes
weighted        cost-weighted negated atoms (Section 6; closed form)   no
probabilistic   Jeffrey conditionalization over one implication        yes
sampling        Monte Carlo estimate of the negation worst case        no
==============  =====================================================  ======

``probabilistic`` is oracle-based (world enumeration) and therefore only
works on instances below :data:`repro.core.exact.MAX_WORLDS`; ``sampling``
scales to anything but returns estimates. Both exist so that cross-model
comparisons — Figure 5's solid-vs-dotted lines and their Section-6
extensions — are one batched engine call.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping
from fractions import Fraction
from typing import Any, ClassVar

from repro.bucketization.bucketization import Bucketization
from repro.core.disclosure import max_disclosure, max_disclosure_series
from repro.core.exact import exact_disclosure_risk
from repro.core.negation import (
    bucket_negation_disclosure,
    max_disclosure_negations,
    max_disclosure_negations_series,
    negation_witness,
)
from repro.core.probabilistic import max_jeffrey_disclosure_single
from repro.core.sampling import SampledProbability, sample_disclosure_risk
from repro.core.weighted import (
    weighted_implication_bounds,
    weighted_negation_candidates,
    weighted_negation_disclosure,
)
from repro.core.witness import worst_case_witness
from repro.engine.base import AdversaryModel, EngineContext, register_adversary

__all__ = [
    "ImplicationAdversary",
    "NegationAdversary",
    "WeightedAdversary",
    "ProbabilisticAdversary",
    "SamplingAdversary",
]


@register_adversary
class ImplicationAdversary(AdversaryModel):
    """``L^k_basic``: conjunctions of ``k`` basic implications (Definition 6).

    The paper's headline adversary, computed by the MINIMIZE1/MINIMIZE2
    dynamic programs in ``O(|B| k^3)``. One DP pass yields every
    ``k' <= max k``, so :meth:`series` costs the same as the largest single
    query, and all per-signature work lives in the context's shared solver.
    """

    name: ClassVar[str] = "implication"
    supports_witness: ClassVar[bool] = True

    def disclosure(
        self, bucketization: Bucketization, k: int, *, context: EngineContext
    ):
        return max_disclosure(bucketization, k, solver=context.solver)

    def series(self, bucketization, ks, *, context) -> dict[int, object]:
        return max_disclosure_series(bucketization, ks, solver=context.solver)

    def witness(self, bucketization, k, *, context):
        return worst_case_witness(bucketization, k, exact=context.exact)

    def worst_bucket(self, bucketization, k, *, context) -> int:
        # A bucket whose local Formula-(1) ratio attains the global minimum
        # drives the worst case (the single-bucket concentration the greedy
        # suppression sanitizer relies on); first argmin, like the legacy
        # sanitizer, so suppression orders are unchanged.
        solver = context.solver

        def ratio(bucket):
            return (
                solver.minimum(bucket.signature, k + 1)
                * bucket.size
                / bucket.top_frequency
            )

        buckets = bucketization.buckets
        return min(range(len(buckets)), key=lambda i: ratio(buckets[i]))


@register_adversary
class NegationAdversary(AdversaryModel):
    """``k`` negated atoms — the ℓ-diversity adversary (Figure 5's dotted
    line), in closed form per bucket."""

    name: ClassVar[str] = "negation"
    supports_witness: ClassVar[bool] = True

    def disclosure(self, bucketization, k, *, context):
        return max_disclosure_negations(bucketization, k, exact=context.exact)

    def series(self, bucketization, ks, *, context) -> dict[int, object]:
        return max_disclosure_negations_series(
            bucketization, ks, exact=context.exact
        )

    def witness(self, bucketization, k, *, context):
        return negation_witness(bucketization, k, exact=context.exact)

    def worst_bucket(self, bucketization, k, *, context) -> int:
        buckets = bucketization.buckets
        return max(
            range(len(buckets)),
            key=lambda i: bucket_negation_disclosure(
                buckets[i], k, exact=context.exact
            ),
        )


@register_adversary
class WeightedAdversary(AdversaryModel):
    """Cost-weighted negated atoms: "not all disclosures are equally bad".

    Parameters
    ----------
    weights:
        ``value -> cost`` mapping (missing values default to unit cost).
        ``None`` means unit weights for every realized value, which makes
        this model coincide with ``negation`` in float arithmetic.

    The exact closed form :func:`repro.core.weighted.weighted_negation_disclosure`
    is the worst case; :meth:`implication_bounds` exposes the rigorous
    bracket for the weighted *implication* attacker (see
    :mod:`repro.core.weighted` for why that case only has bounds).
    """

    name: ClassVar[str] = "weighted"
    supports_exact: ClassVar[bool] = False
    unbounded_scale: ClassVar[bool] = True  # disclosure scales with max w(s)

    def __init__(self, weights: Mapping[Any, float] | None = None) -> None:
        self.weights = dict(weights) if weights is not None else None

    def params_key(self) -> tuple:
        if self.weights is None:
            return ("uniform",)
        return tuple(sorted(self.weights.items(), key=lambda kv: repr(kv[0])))

    def signature_decomposable(self) -> bool:
        # Unit weights see only histogram shapes; explicit costs attach to
        # concrete values, which the signature plane does not carry.
        return self.weights is None

    def cache_key(self, bucketization: Bucketization):
        # Non-uniform costs depend on *which* values fill a histogram, not
        # just its shape: key by the multiset of per-bucket value histograms
        # (values_by_frequency/signature are already in canonical order).
        histograms = Counter(
            tuple(zip(bucket.values_by_frequency, bucket.signature))
            for bucket in bucketization.buckets
        )
        return frozenset(histograms.items())

    def _weights_for(self, bucketization: Bucketization) -> Mapping[Any, float]:
        if self.weights is not None:
            return self.weights
        return {
            value: 1.0
            for bucket in bucketization.buckets
            for value in bucket.values_by_frequency
        }

    def disclosure(self, bucketization, k, *, context):
        return weighted_negation_disclosure(
            bucketization, k, self._weights_for(bucketization)
        )

    def worst_value(self, bucket, k, *, context):
        # The disclosure driver is the cost-optimal target, not the most
        # frequent value: removing a tuple of that value shrinks the
        # numerator of the term that attains the worst case.
        candidates = weighted_negation_candidates(bucket, k, self.weights or {})
        return max(candidates, key=lambda cv: cv[0])[1]

    def implication_bounds(
        self, bucketization: Bucketization, k: int
    ) -> tuple[float, float]:
        """Rigorous ``(lower, upper)`` bounds against ``k`` weighted
        implications (Lemma 12's consequent choice is not weight-optimal, so
        only a bracket is known)."""
        return weighted_implication_bounds(
            bucketization, k, self._weights_for(bucketization)
        )


@register_adversary
class ProbabilisticAdversary(AdversaryModel):
    """Jeffrey-conditionalization attacker: confident, not certain.

    Parameters
    ----------
    confidence:
        The attacker's probability ``q`` in [0, 1] that their (single simple
        implication) formula holds; ``q = 1`` is ordinary conditioning.

    ``k = 0`` is the no-knowledge baseline; for any ``k >= 1`` the model
    evaluates the worst case over *one* formula held with confidence ``q``
    (the probabilistic analogue of ``L^1_basic`` — this attacker's power does
    not grow with ``k``). Oracle-based: small instances only.
    """

    name: ClassVar[str] = "probabilistic"

    def __init__(self, confidence: Fraction | float = 1) -> None:
        q = Fraction(confidence)
        if isinstance(confidence, float):
            # Floats carry binary-repr noise (0.9 is not 9/10); cap the
            # denominator for them only. An exact user-supplied Fraction
            # must survive untouched — it IS the threat model, and it is
            # part of the cache identity via params_key().
            q = q.limit_denominator(10**9)
        if not 0 <= q <= 1:
            raise ValueError(f"confidence must be in [0, 1], got {confidence}")
        self.confidence = q

    def params_key(self) -> tuple:
        return (self.confidence,)

    def disclosure(self, bucketization, k, *, context):
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if k == 0:
            value = exact_disclosure_risk(bucketization, None)
        else:
            value = max_jeffrey_disclosure_single(bucketization, self.confidence)
        return value if context.exact else float(value)

    def series(self, bucketization, ks, *, context) -> dict[int, object]:
        # The answer is identical for every k >= 1 (a single-formula
        # attacker), and the oracle sweep behind it is the most expensive
        # computation in the package — run it once, not once per k.
        ks = sorted(set(ks))
        result: dict[int, object] = {}
        shared = None
        for k in ks:
            if k == 0:
                result[k] = self.disclosure(bucketization, 0, context=context)
            else:
                if shared is None:
                    shared = self.disclosure(bucketization, k, context=context)
                result[k] = shared
        return result


@register_adversary
class SamplingAdversary(AdversaryModel):
    """Monte Carlo estimate of the negation worst case (Theorem 8 regime).

    The closed forms above are exact; this model is the estimator one would
    use for a knowledge language *without* a polynomial algorithm. It
    reconstructs the worst-case negation witness (cheap, closed form), then
    estimates its conditional disclosure by rejection sampling — an unbiased
    check of the analytic number, with a Wilson interval available from
    :meth:`sample`.

    Parameters
    ----------
    samples, seed:
        Rejection-sampling budget and PRNG seed (deterministic per seed).
    """

    name: ClassVar[str] = "sampling"
    supports_exact: ClassVar[bool] = False
    monotone: ClassVar[bool] = False  # estimates are noisy near thresholds

    def __init__(self, samples: int = 20_000, seed: int = 0) -> None:
        if samples <= 0:
            raise ValueError(f"samples must be positive, got {samples}")
        self.samples = samples
        self.seed = seed

    def params_key(self) -> tuple:
        return (self.samples, self.seed)

    def signature_decomposable(self) -> bool:
        return False  # draws depend on value order, not just the histogram

    def cache_key(self, bucketization: Bucketization):
        # Draws depend on each bucket's value *order* and on bucket order —
        # strictly finer than the signature multiset — so the cache key must
        # be too, or two same-shaped bucketizations would share one estimate.
        return tuple(
            tuple(bucket.sensitive_values) for bucket in bucketization.buckets
        )

    def _witness_event(self, bucketization: Bucketization, k: int):
        if k == 0:
            return None
        witness = negation_witness(bucketization, k)
        person = witness.person
        negated = frozenset(witness.negated_values)

        def phi(world: Mapping[Any, Any]) -> bool:
            return world[person] not in negated

        return phi

    def sample(self, bucketization: Bucketization, k: int) -> SampledProbability:
        """The full estimate (point, acceptance counts, Wilson interval)."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return sample_disclosure_risk(
            bucketization,
            self._witness_event(bucketization, k),
            samples=self.samples,
            seed=self.seed,
        )

    def disclosure(self, bucketization, k, *, context):
        return self.sample(bucketization, k).estimate
