"""The :class:`DisclosureEngine`: one disclosure layer for every consumer.

The engine owns three things no single legacy function had:

1. **A shared, bounded cache on the signature plane.** Every bucketization
   is interned once into a compact id-multiset
   (:class:`~repro.engine.plane.SignaturePlane`), and one LRU-ordered dict —
   keyed by ``(model name, model params, k, plane key)`` — serves all
   models, all bucketizations, and all attacker powers evaluated on the
   engine. A :class:`~repro.engine.plane.CachePolicy` bounds the entry
   count (evictions are counted in :class:`EngineStats`), lattice sweeps
   can pin their entries, and :meth:`DisclosureEngine.save_cache` /
   :meth:`DisclosureEngine.load_cache` persist entries portably (plane keys
   are decoded to raw signatures on disk and re-interned on load).
2. **Batch APIs, optionally parallel.** :meth:`DisclosureEngine.series`
   evaluates many ``k`` at the cost the model can manage;
   :meth:`DisclosureEngine.evaluate_many` runs a series over many
   bucketizations — serially through the cache, or chunked by *unique*
   plane key over an :class:`~repro.engine.backend.ExecutionBackend`
   (``workers > 1``: a per-call process pool or persistent workers with
   incremental signature shipping) with deterministic merge order and
   warm-back, so parallel results populate the shared cache and are
   bit-for-bit identical to the serial path;
   :meth:`DisclosureEngine.compare` runs many *models* over one
   bucketization — Figure 5's solid-vs-dotted lines in one call.
3. **Uniform mode and witness handling.** The engine fixes exact/float
   arithmetic once at construction; every model call receives the shared
   :class:`~repro.engine.base.EngineContext` (mode + signature plane +
   MINIMIZE1 solver), and :meth:`DisclosureEngine.witness` reconstructs
   worst-case formulas for any model that supports them.

High-level consumers — (c,k)-safety, greedy suppression, the lattice
searches, the experiments, the CLI — are thin wrappers over this class, so an
adversary registered with :func:`~repro.engine.base.register_adversary` is
immediately usable everywhere.
"""

from __future__ import annotations

import pickle
from collections import OrderedDict
from collections.abc import Callable, Iterable, Mapping, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from fractions import Fraction
from typing import Any

from repro.bucketization.bucketization import Bucketization
from repro.engine.backend import ExecutionBackend, create_backend
from repro.engine.base import (
    AdversaryModel,
    EngineContext,
    canonical_params,
    get_adversary,
)
from repro.engine.plane import CachePolicy, SignaturePlane
from repro.errors import SearchError

__all__ = ["EngineStats", "DisclosureEngine"]

#: On-disk cache format version (bumped on incompatible layout changes).
CACHE_FORMAT = 1

_MISS = object()


def _threshold(c: float, *, exact: bool, bounded: bool = True):
    """Validate a disclosure threshold and put it in the engine's arithmetic.

    ``bounded`` reflects the adversary model's scale: probability-valued
    models cap thresholds at 1; unbounded (cost-weighted) models only require
    positivity.
    """
    if c <= 0 or (bounded and c > 1):
        bound = "(0, 1]" if bounded else "(0, inf)"
        raise ValueError(f"threshold c must be in {bound}, got {c}")
    return Fraction(c).limit_denominator() if exact else c


@dataclass
class EngineStats:
    """Counters for the engine's shared memoization.

    Attributes
    ----------
    evaluations:
        Number of ``(bucketization, k, model)`` lookups requested.
    cache_hits:
        How many of those were answered from the shared cache — entries that
        existed *before* the lookup's own batch ran.
    parallel_hits:
        Lookups answered directly from a parallel batch's own results during
        assembly (the values came from worker processes this very call, not
        from prior cache state). Counted separately so a cold cache with
        ``workers > 1`` honestly reports a zero ``hit_rate``.
    evictions:
        Entries dropped by the LRU bound (0 when ``max_entries`` is unset).
    parallel_tasks:
        Unique plane keys whose series were computed by worker processes
        (their per-``k`` results reach callers via ``parallel_hits``
        assembly and cache warm-back).
    kernel:
        The concrete MINIMIZE1/MINIMIZE2 kernel the engine resolved to
        (``"numpy"`` or ``"scalar"``) — surfaced so benchmark artifacts and
        ``/stats`` are self-describing about the code path that produced
        their numbers.
    """

    evaluations: int = 0
    cache_hits: int = 0
    parallel_hits: int = 0
    evictions: int = 0
    parallel_tasks: int = 0
    kernel: str = "scalar"

    @property
    def misses(self) -> int:
        return self.evaluations - self.cache_hits - self.parallel_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from *pre-existing* cache entries
        (0.0 when none yet; parallel-batch assembly does not count)."""
        return self.cache_hits / self.evaluations if self.evaluations else 0.0

    def as_dict(self) -> dict[str, object]:
        """The counters plus derived rates, for JSON benchmark artifacts."""
        return {
            "evaluations": self.evaluations,
            "cache_hits": self.cache_hits,
            "parallel_hits": self.parallel_hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 6),
            "evictions": self.evictions,
            "parallel_tasks": self.parallel_tasks,
            "kernel": self.kernel,
        }


class DisclosureEngine:
    """Evaluate any registered adversary model with one shared cache.

    Parameters
    ----------
    exact:
        Use exact :class:`~fractions.Fraction` arithmetic for every model
        that supports it (inherently floating-point models — ``weighted``,
        ``sampling`` — return floats regardless; see each model's
        ``supports_exact``).
    policy:
        A :class:`~repro.engine.plane.CachePolicy` bounding the shared
        cache; the default is unbounded with no sweep pinning.
    workers:
        Default process-pool size for :meth:`evaluate_many` and the engine's
        lattice-sweep prewarm (1 = serial; the per-call ``workers`` argument
        overrides it).
    backend:
        How batches fan out: a name from
        :func:`~repro.engine.backend.available_backends` (``"serial"``,
        ``"pool"``, ``"persistent"``) or an
        :class:`~repro.engine.backend.ExecutionBackend` instance. The
        default ``"pool"`` is the legacy per-call process pool; with
        ``"serial"`` the engine never spawns regardless of ``workers``;
        ``"persistent"`` keeps long-lived workers with incremental
        signature shipping. Long-lived backends hold real processes —
        call :meth:`close` (or use the engine as a context manager) when
        done; the engine closes whichever backend it holds, including a
        caller-provided instance.
    kernel:
        MINIMIZE1/MINIMIZE2 kernel selector (``"auto"``, ``"numpy"``,
        ``"scalar"``). Resolved once at construction via
        :func:`repro.core.kernel.resolve_kernel` — exact mode always runs
        scalar, and the resolved concrete kernel is shipped to every
        worker so parallel results stay bit-identical to serial. The
        numpy float kernel is itself bit-identical to the scalar float
        path.

    Examples
    --------
    >>> from repro.bucketization import Bucketization
    >>> engine = DisclosureEngine()
    >>> b = Bucketization.from_value_lists([["flu", "flu", "cold", "mumps"]])
    >>> round(engine.evaluate(b, 1), 4)                  # implications
    0.75
    >>> round(engine.evaluate(b, 1, model="negation"), 4)
    0.6667
    >>> engine.stats.evaluations
    2
    """

    def __init__(
        self,
        *,
        exact: bool = False,
        policy: CachePolicy | None = None,
        workers: int = 1,
        backend: str | ExecutionBackend = "pool",
        kernel: str = "auto",
    ) -> None:
        self.exact = exact
        self.policy = policy if policy is not None else CachePolicy()
        self.workers = max(1, int(workers))
        self.backend = create_backend(backend)
        self.plane = SignaturePlane()
        self.context = EngineContext(exact=exact, plane=self.plane, kernel=kernel)
        self.stats = EngineStats(kernel=self.context.kernel)
        self._cache: OrderedDict[tuple, Any] = OrderedDict()
        self._pinned: set[tuple] = set()
        self._pin_depth = 0
        self._instances: dict[tuple, AdversaryModel] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the execution backend's long-lived resources (worker
        processes for ``persistent``; a no-op for ``serial``/``pool``).
        The engine itself stays usable — a closed persistent backend
        respawns its workers on the next parallel batch."""
        self.backend.close()

    def __enter__(self) -> DisclosureEngine:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def kernel(self) -> str:
        """The concrete MINIMIZE1/MINIMIZE2 kernel in use (``numpy``/``scalar``)."""
        return self.context.kernel

    # ------------------------------------------------------------------
    # Model resolution and cache plumbing
    # ------------------------------------------------------------------
    def model(
        self,
        model: str | AdversaryModel,
        params: Mapping[str, Any] | None = None,
    ) -> AdversaryModel:
        """Resolve a name (plus optional constructor ``params``) or pass an
        instance through, reusing one instance per ``(name, canonical
        params)`` so equal parameterizations share cache identity.

        Constructor errors propagate: :class:`TypeError` for an unknown
        parameter name, :class:`ValueError` for an out-of-range value —
        callers serving requests map both to a 400.
        """
        if isinstance(model, AdversaryModel):
            if params:
                raise ValueError("params are only valid with a model *name*")
            return model
        key = (model, canonical_params(params))
        instance = self._instances.get(key)
        if instance is None:
            instance = get_adversary(model, **(params or {}))
            self._instances[key] = instance
        return instance

    def cache_size(self) -> int:
        """Number of memoized ``(model, params, k, plane key)`` entries."""
        return len(self._cache)

    def pinned_count(self) -> int:
        """Number of entries currently exempt from LRU eviction."""
        return len(self._pinned)

    def threshold(self, c: float, *, model: str | AdversaryModel | None = None):
        """Validate a disclosure threshold and convert it to this engine's
        arithmetic — the one rule every safety comparison shares.

        With a ``model``, the upper bound follows the model's scale:
        probability-valued models cap ``c`` at 1, ``unbounded_scale`` models
        (cost-weighted) accept any positive threshold.
        """
        bounded = True
        if model is not None:
            bounded = not self.model(model).unbounded_scale
        return _threshold(c, exact=self.exact, bounded=bounded)

    def _bucket_key(self, m: AdversaryModel, bucketization: Bucketization):
        """The bucketization half of a cache key, tagged by provenance:
        ``("plane", id-multiset)`` for signature-decomposable models (the
        common case — portable via the plane), ``("raw", model key)`` for
        models keyed finer than the signature plane."""
        if m.signature_decomposable():
            return ("plane", self.plane.encode(bucketization))
        return ("raw", m.cache_key(bucketization))

    def _key(self, m: AdversaryModel, bucketization: Bucketization, k: int):
        return (m.name, m.params_key(), k, self._bucket_key(m, bucketization))

    def peek_cached(self, model, k: int, signature_items):
        """Read-only cache probe from raw ``(signature, count)`` items.

        Returns the cached disclosure value for the plane key
        ``(model, k, signature-multiset)`` or ``None`` on a miss — without
        constructing a :class:`Bucketization`, interning anything into the
        plane, touching LRU order, or recording stats. Every operation is a
        plain dict read, so the serving layer may call this from its event
        loop while the engine thread computes: the worst a race can produce
        is a spurious miss, never a wrong value.

        Only signature-decomposable models are peekable (others key their
        cache finer than the plane); anything else is reported as a miss.
        """
        if k < 0:
            return None
        m = self.model(model)
        if not m.signature_decomposable():
            return None
        plane_key = self.plane.probe(signature_items)
        if plane_key is None:
            return None
        key = (m.name, m.params_key(), k, ("plane", plane_key))
        value = self._cache.get(key, _MISS)
        return None if value is _MISS else value

    def _cache_get(self, key):
        value = self._cache.get(key, _MISS)
        if value is not _MISS:
            self._cache.move_to_end(key)
            if self._pin_depth > 0:
                # A pinned scope claims what it *uses*, not just what it
                # inserts — a sweep rereading a warm entry must keep it.
                self._pinned.add(key)
        return value

    def _cache_put(self, key, value, *, pin: bool = True) -> None:
        self._cache[key] = value
        self._cache.move_to_end(key)
        if pin and self._pin_depth > 0:
            self._pinned.add(key)
        limit = self.policy.max_entries
        if limit is None:
            return
        while len(self._cache) > limit:
            if len(self._pinned) >= len(self._cache):
                break  # everything pinned: overflow beats data loss
            victim = next(iter(self._cache))
            if victim in self._pinned:
                # Rotate pinned keys out of scan position: they are immune
                # to eviction, so their LRU position carries no information,
                # and rotating keeps each eviction O(1) amortized instead of
                # rescanning a pinned prefix on every insert.
                self._cache.move_to_end(victim)
                continue
            del self._cache[victim]
            self.stats.evictions += 1

    @contextmanager
    def pinned(self):
        """Scope in which every cache entry inserted is pinned: exempt from
        LRU eviction until :meth:`unpin_all`. Lattice sweeps use this (via
        ``CachePolicy.pin_sweeps``) so a bounded cache serving both a sweep
        and ad-hoc traffic evicts the traffic, not the sweep."""
        self._pin_depth += 1
        try:
            yield self
        finally:
            self._pin_depth -= 1

    def unpin_all(self) -> None:
        """Release every pin (entries stay cached, but become evictable).

        Formerly pinned entries may have been rotated to the recent end of
        the LRU order while pinned (their position was irrelevant then), so
        immediately after unpinning they are evicted late rather than in
        strict original recency order.
        """
        self._pinned.clear()

    # ------------------------------------------------------------------
    # Cache persistence
    # ------------------------------------------------------------------
    def save_cache(self, path) -> int:
        """Persist the cache to ``path`` in a plane-independent form.

        Plane-tagged keys are decoded to raw signature multisets (ids are
        plane-local and would be meaningless elsewhere); a different engine —
        or the same service after a restart — re-interns them on
        :meth:`load_cache`. Returns the number of entries written.
        """
        entries = []
        for key, value in self._cache.items():
            name, params, k, (tag, bucket_key) = key
            if tag == "plane":
                bucket_key = self.plane.decode(bucket_key)
            entries.append((name, params, k, tag, bucket_key, value))
        payload = {
            "format": CACHE_FORMAT,
            "exact": self.exact,
            "entries": entries,
        }
        with open(path, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        return len(entries)

    def load_cache(self, path) -> int:
        """Load entries saved by :meth:`save_cache`, re-interning plane keys.

        Existing entries win on collision. The cache policy applies (loading
        more than ``max_entries`` evicts). Loaded entries are *never* pinned
        — restoring a cache inside a :meth:`pinned` scope (or under
        ``pin_sweeps``) must not make the whole file permanent; a sweep that
        later reads a loaded entry claims it then, as usual. Returns the
        number of entries actually inserted.

        .. warning::
            The file is deserialized with :mod:`pickle`, which executes code
            during loading — only load cache files you wrote yourself (or
            otherwise trust). Never point this at shared or
            attacker-writable storage.

        Raises
        ------
        ValueError
            On a format-version mismatch, or when the file was saved by an
            engine in the other arithmetic mode (float and Fraction answers
            must never mix in one cache).
        """
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        if payload.get("format") != CACHE_FORMAT:
            raise ValueError(
                f"unsupported cache format {payload.get('format')!r} "
                f"(expected {CACHE_FORMAT})"
            )
        if bool(payload.get("exact")) != self.exact:
            raise ValueError(
                f"cache was saved with exact={payload.get('exact')} but this "
                f"engine has exact={self.exact}; arithmetic modes must match"
            )
        loaded = 0
        for name, params, k, tag, bucket_key, value in payload["entries"]:
            if tag == "plane":
                bucket_key = self.plane.encode_counts(bucket_key)
            key = (name, params, k, (tag, bucket_key))
            if key not in self._cache:
                self._cache_put(key, value, pin=False)
                loaded += 1
        return loaded

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        bucketization: Bucketization,
        k: int,
        *,
        model: str | AdversaryModel = "implication",
    ):
        """Worst-case disclosure of ``bucketization`` against ``model`` with
        attacker power ``k`` (cached)."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        m = self.model(model)
        key = self._key(m, bucketization, k)
        self.stats.evaluations += 1
        value = self._cache_get(key)
        if value is not _MISS:
            self.stats.cache_hits += 1
            return value
        value = m.disclosure(bucketization, k, context=self.context)
        self._cache_put(key, value)
        return value

    def series(
        self,
        bucketization: Bucketization,
        ks: Iterable[int],
        *,
        model: str | AdversaryModel = "implication",
    ) -> dict[int, object]:
        """Worst case for several ``k`` values, batched.

        Already-cached ``k`` are answered from the cache; the rest go to the
        model's own batch path in one call (for ``implication`` a single
        MINIMIZE2 pass covers every ``k``, as ``max_disclosure_series``
        always did), and the results are cached individually so later single
        evaluations hit.
        """
        m = self.model(model)
        ks = sorted(set(ks))
        if ks and ks[0] < 0:
            raise ValueError(f"k must be non-negative, got {ks[0]}")
        result: dict[int, object] = {}
        missing: list[int] = []
        name, params = m.name, m.params_key()
        bucket_key = self._bucket_key(m, bucketization)
        for k in ks:
            key = (name, params, k, bucket_key)
            self.stats.evaluations += 1
            value = self._cache_get(key)
            if value is not _MISS:
                self.stats.cache_hits += 1
                result[k] = value
            else:
                missing.append(k)
        if missing:
            computed = m.series(bucketization, missing, context=self.context)
            for k in missing:
                value = computed[k]
                self._cache_put((name, params, k, bucket_key), value)
                result[k] = value
        return result

    def evaluate_many(
        self,
        bucketizations: Iterable[Bucketization],
        ks: Iterable[int],
        *,
        model: str | AdversaryModel = "implication",
        workers: int | None = None,
    ) -> list[dict[int, object]]:
        """One series per bucketization, in input order, all sharing this
        engine's cache and solver — the batched form a lattice sweep or an
        incremental republication wants.

        With ``workers > 1`` (default: the engine's ``workers``), a parallel
        execution backend, and a signature-decomposable model, the *unique
        uncached* plane keys are evaluated by the engine's
        :class:`~repro.engine.backend.ExecutionBackend` — each distinct
        signature multiset is computed exactly once — and warm-backed into
        the shared cache before the per-bucketization assembly. Results are
        bit-for-bit identical to the serial path (deterministic chunking and
        merge order; same canonical signature order inside each worker).
        Serial fallback: ``workers <= 1``, the ``serial`` backend,
        non-decomposable models (their answers depend on more than the
        plane ships), or an unavailable/broken backend.
        """
        bs = list(bucketizations)
        ks = sorted(set(ks))
        m = self.model(model)
        workers = self.workers if workers is None else max(1, int(workers))
        warmed: dict[tuple, dict[int, object]] = {}
        if (
            workers > 1
            and self.backend.parallel
            and len(bs) > 1
            and ks
            and m.signature_decomposable()
        ):
            warmed = self._parallel_warm(bs, ks, m, workers)
        if not warmed:
            return [self.series(b, ks, model=m) for b in bs]
        # Assemble from the batch's own results where available (not only via
        # the cache warm-back: a tight CachePolicy may already have evicted
        # them, and recomputing serially would waste the workers' effort).
        # These lookups count as parallel_hits, not cache_hits: the values
        # were produced by this very call, so a cold cache keeps an honest
        # zero hit_rate.
        results = []
        for b in bs:
            series = warmed.get(self.plane.encode(b))
            if series is None:
                results.append(self.series(b, ks, model=m))
                continue
            self.stats.evaluations += len(ks)
            self.stats.parallel_hits += len(ks)
            results.append({k: series[k] for k in ks})
        return results

    def _parallel_warm(
        self,
        bucketizations: Sequence[Bucketization],
        ks: Sequence[int],
        m: AdversaryModel,
        workers: int,
    ) -> dict[tuple, dict[int, object]]:
        """Compute the unique uncached plane keys on the execution backend.

        Returns ``{plane key: series}`` for the computed multisets (empty on
        any backend failure — the serial path then takes over, recomputing
        and re-raising any genuine model error cleanly) and warm-backs the
        results into the shared cache so later calls hit."""
        name, params = m.name, m.params_key()
        pending: dict[tuple, None] = {}
        for b in bucketizations:
            plane_key = self.plane.encode(b)
            if plane_key in pending:
                continue
            tagged = ("plane", plane_key)
            if any((name, params, k, tagged) not in self._cache for k in ks):
                pending[plane_key] = None
        if len(pending) < 2:
            return {}  # nothing (or one series) to fan out; serial is cheaper
        try:
            all_series = self.backend.run(
                m,
                self.plane,
                list(pending),
                ks,
                exact=self.exact,
                workers=workers,
                kernel=self.context.kernel,
            )
        except Exception:
            # Backend unavailable (unpicklable plugin, fork restrictions,
            # workers crashed twice) — degrade silently to the serial path.
            return {}
        warmed: dict[tuple, dict[int, object]] = {}
        for plane_key, series in zip(pending, all_series):
            warmed[plane_key] = series
            tagged = ("plane", plane_key)
            for k, value in series.items():
                key = (name, params, k, tagged)
                if key not in self._cache:
                    self._cache_put(key, value)
        self.stats.parallel_tasks += len(pending)
        return warmed

    def compare(
        self,
        bucketization: Bucketization,
        ks: Iterable[int],
        *,
        models: Sequence[str | AdversaryModel] = ("implication", "negation"),
    ) -> dict[str, dict[int, object]]:
        """Cross-model comparison: ``{model name: {k: disclosure}}``.

        This is Figure 5 (solid implication line vs. dotted negation line) as
        one batched call; add any registered model name to extend the plot.
        Several differently-parameterized instances of one model get
        disambiguated keys (``weighted``, ``weighted#2``, ...) so no series
        is silently dropped.
        """
        result: dict[str, dict[int, object]] = {}
        for spec in models:
            m = self.model(spec)
            key, n = m.name, 1
            while key in result:
                n += 1
                key = f"{m.name}#{n}"
            result[key] = self.series(bucketization, ks, model=m)
        return result

    # ------------------------------------------------------------------
    # Derived queries
    # ------------------------------------------------------------------
    def witness(
        self,
        bucketization: Bucketization,
        k: int,
        *,
        model: str | AdversaryModel = "implication",
    ):
        """A concrete worst-case formula for ``model`` (not cached — witness
        objects reference real people, not just histogram shapes).

        Raises
        ------
        NotImplementedError
            If the model does not support witness reconstruction.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        m = self.model(model)
        return m.witness(bucketization, k, context=self.context)

    def is_safe(
        self,
        bucketization: Bucketization,
        c: float,
        k: int,
        *,
        model: str | AdversaryModel = "implication",
    ) -> bool:
        """(c,k)-safety (Definition 13) generalized to any adversary model:
        worst-case disclosure strictly below ``c``."""
        m = self.model(model)
        threshold = self.threshold(c, model=m)
        return self.evaluate(bucketization, k, model=m) < threshold

    def min_k_to_breach(
        self,
        bucketization: Bucketization,
        c: float,
        *,
        model: str | AdversaryModel = "implication",
    ) -> int:
        """Least attacker power whose worst case reaches ``c``.

        The search is bounded by ``max_b (d_b - 1)`` (enough negations to
        force certainty), which is guaranteed to suffice for the implication
        and negation adversaries.

        Raises
        ------
        SearchError
            If the model never reaches ``c`` within the bound (possible for
            models whose power does not grow with ``k``).
        """
        m = self.model(model)
        threshold = self.threshold(c, model=m)
        bound = max(b.distinct_count for b in bucketization.buckets) - 1
        series = self.series(bucketization, range(bound + 1), model=m)
        for k in range(bound + 1):
            if series[k] >= threshold:
                return k
        raise SearchError(
            f"the {m.name!r} adversary never reaches disclosure {c} "
            f"within k <= {bound}"
        )

    def worst_bucket(
        self,
        bucketization: Bucketization,
        k: int,
        *,
        model: str | AdversaryModel = "implication",
    ) -> int:
        """Index of a bucket attaining the model's worst case (what a greedy
        sanitizer should shrink next)."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        m = self.model(model)
        return m.worst_bucket(bucketization, k, context=self.context)

    # ------------------------------------------------------------------
    # Lattice search (Section 3.4), adversary-parametric
    # ------------------------------------------------------------------
    def node_predicate(
        self,
        table,
        lattice,
        c: float,
        k: int,
        *,
        model: str | AdversaryModel = "implication",
        bucketizations: dict | None = None,
    ) -> Callable[[tuple], bool]:
        """A cached node-level safety predicate for the lattice searches.

        For signature-decomposable models the predicate also carries a
        signature-level memo: two nodes whose bucketizations induce the same
        signature multiset resolve with one engine call and one threshold
        comparison. With ``CachePolicy.pin_sweeps``, every cache entry the
        predicate inserts or reads is pinned. A prebuilt
        ``node -> bucketization`` dict (e.g. from a parallel prewarm) is
        consumed instead of re-bucketizing.

        Monotonicity along the generalization order is Theorem 14's gift for
        the implication adversary and holds for every bucket-decomposable
        model in this package; as with the raw search functions it remains
        the caller's responsibility for custom plugins.
        """
        from repro.generalization.search import node_safety_predicate

        m = self.model(model)
        threshold = self.threshold(c, model=m)
        pin = self.policy.pin_sweeps
        signature_memo = {} if m.signature_decomposable() else None

        def checker(bucketization: Bucketization) -> bool:
            if pin:
                with self.pinned():
                    value = self.evaluate(bucketization, k, model=m)
            else:
                value = self.evaluate(bucketization, k, model=m)
            return value < threshold

        return node_safety_predicate(
            table,
            lattice,
            checker,
            signature_memo=signature_memo,
            bucketizations=bucketizations,
        )

    def find_minimal_safe_nodes(
        self,
        table,
        lattice,
        c: float,
        k: int,
        *,
        model: str | AdversaryModel = "implication",
        stats=None,
        workers: int | None = None,
    ) -> list:
        """All minimal (c,k)-safe lattice nodes under ``model`` (the paper's
        modified-Incognito sweep, with this engine's cache behind it).

        With ``workers > 1``, a parallel backend, and a
        signature-decomposable model, every node's disclosure is prewarmed
        in parallel on the execution backend
        before the sweep, which then runs on pure cache hits; the prewarm's
        bucketizations are handed to the predicate so no node is bucketized
        twice. (The prewarm trades the sweep's monotonicity pruning for
        parallelism — it evaluates all nodes — so it pays off when per-node
        work dominates, the common case for large tables.) Non-decomposable
        models, and a failed pool, skip the prewarm and keep the ordinary
        pruned serial sweep.
        """
        from repro.generalization.search import find_minimal_safe_nodes

        m = self.model(model)
        workers = self.workers if workers is None else max(1, int(workers))
        node_bucketizations: dict | None = None
        if workers > 1 and self.backend.parallel and m.signature_decomposable():
            from repro.generalization.apply import bucketize_at

            node_bucketizations = {
                node: bucketize_at(table, lattice, node)
                for node in lattice.nodes()
            }
            bs = list(node_bucketizations.values())
            ks = [k]
            if self.policy.pin_sweeps:
                # The prewarm IS the sweep's cache fill: pin it, or the
                # pin_sweeps guarantee would only cover the serial path.
                with self.pinned():
                    self._parallel_warm(bs, ks, m, workers)
            else:
                self._parallel_warm(bs, ks, m, workers)
        predicate = self.node_predicate(
            table, lattice, c, k, model=m, bucketizations=node_bucketizations
        )
        return find_minimal_safe_nodes(lattice, predicate, stats=stats)

    def find_best_safe_node(
        self,
        table,
        lattice,
        c: float,
        k: int,
        utility: Callable[[tuple], float],
        *,
        model: str | AdversaryModel = "implication",
        stats=None,
    ):
        """The minimal safe node maximizing ``utility`` under ``model``."""
        from repro.generalization.search import find_best_safe_node

        predicate = self.node_predicate(table, lattice, c, k, model=model)
        return find_best_safe_node(lattice, predicate, utility, stats=stats)

    def binary_search_chain(
        self,
        table,
        lattice,
        chain: Sequence,
        c: float,
        k: int,
        *,
        model: str | AdversaryModel = "implication",
        stats=None,
    ):
        """Lowest safe node on a fine-to-coarse chain under ``model``."""
        from repro.generalization.search import binary_search_chain

        predicate = self.node_predicate(table, lattice, c, k, model=model)
        return binary_search_chain(chain, predicate, stats=stats)
