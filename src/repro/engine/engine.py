"""The :class:`DisclosureEngine`: one disclosure layer for every consumer.

The engine owns three things no single legacy function had:

1. **A shared cache.** The signature-multiset memoization that used to be
   private to :class:`~repro.core.safety.SafetyChecker` is generalized here
   to *every* registered adversary model: one dict, keyed by
   ``(model name, model params, k, model cache key)``, serves all models, all
   bucketizations and all attacker powers evaluated on the engine. A lattice
   sweep, a Figure-5 reproduction and a safety check share the same entries.
2. **Batch APIs.** :meth:`DisclosureEngine.series` evaluates many ``k`` at the
   cost the model can manage (the implication DP computes them all in one
   pass); :meth:`DisclosureEngine.evaluate_many` runs a series over many
   bucketizations; :meth:`DisclosureEngine.compare` runs many *models* over
   one bucketization — Figure 5's solid-vs-dotted lines in one call.
3. **Uniform mode and witness handling.** The engine fixes exact/float
   arithmetic once at construction; every model call receives the shared
   :class:`~repro.engine.base.EngineContext` (mode + MINIMIZE1 solver), and
   :meth:`DisclosureEngine.witness` reconstructs worst-case formulas for any
   model that supports them.

High-level consumers — (c,k)-safety, greedy suppression, the lattice
searches, the experiments, the CLI — are thin wrappers over this class, so an
adversary registered with :func:`~repro.engine.base.register_adversary` is
immediately usable everywhere.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from fractions import Fraction
from typing import Any

from repro.bucketization.bucketization import Bucketization
from repro.engine.base import AdversaryModel, EngineContext, get_adversary
from repro.errors import SearchError

__all__ = ["EngineStats", "DisclosureEngine"]


def _threshold(c: float, *, exact: bool, bounded: bool = True):
    """Validate a disclosure threshold and put it in the engine's arithmetic.

    ``bounded`` reflects the adversary model's scale: probability-valued
    models cap thresholds at 1; unbounded (cost-weighted) models only require
    positivity.
    """
    if c <= 0 or (bounded and c > 1):
        bound = "(0, 1]" if bounded else "(0, inf)"
        raise ValueError(f"threshold c must be in {bound}, got {c}")
    return Fraction(c).limit_denominator() if exact else c


@dataclass
class EngineStats:
    """Counters for the engine's shared memoization.

    Attributes
    ----------
    evaluations:
        Number of ``(bucketization, k, model)`` lookups requested.
    cache_hits:
        How many of those were answered from the shared cache.
    """

    evaluations: int = 0
    cache_hits: int = 0

    @property
    def misses(self) -> int:
        return self.evaluations - self.cache_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet)."""
        return self.cache_hits / self.evaluations if self.evaluations else 0.0


class DisclosureEngine:
    """Evaluate any registered adversary model with one shared cache.

    Parameters
    ----------
    exact:
        Use exact :class:`~fractions.Fraction` arithmetic for every model
        that supports it (inherently floating-point models — ``weighted``,
        ``sampling`` — return floats regardless; see each model's
        ``supports_exact``).

    Examples
    --------
    >>> from repro.bucketization import Bucketization
    >>> engine = DisclosureEngine()
    >>> b = Bucketization.from_value_lists([["flu", "flu", "cold", "mumps"]])
    >>> round(engine.evaluate(b, 1), 4)                  # implications
    0.75
    >>> round(engine.evaluate(b, 1, model="negation"), 4)
    0.6667
    >>> engine.stats.evaluations
    2
    """

    def __init__(self, *, exact: bool = False) -> None:
        self.exact = exact
        self.context = EngineContext(exact=exact)
        self.stats = EngineStats()
        self._cache: dict[tuple, Any] = {}
        self._instances: dict[str, AdversaryModel] = {}

    # ------------------------------------------------------------------
    # Model resolution and cache plumbing
    # ------------------------------------------------------------------
    def model(self, model: str | AdversaryModel) -> AdversaryModel:
        """Resolve a name or instance to a model, reusing one instance per
        name so default-parameter models share cache identity."""
        if isinstance(model, AdversaryModel):
            return model
        instance = self._instances.get(model)
        if instance is None:
            instance = get_adversary(model)
            self._instances[model] = instance
        return instance

    def cache_size(self) -> int:
        """Number of memoized ``(model, params, k, bucketization)`` entries."""
        return len(self._cache)

    def threshold(self, c: float, *, model: str | AdversaryModel | None = None):
        """Validate a disclosure threshold and convert it to this engine's
        arithmetic — the one rule every safety comparison shares.

        With a ``model``, the upper bound follows the model's scale:
        probability-valued models cap ``c`` at 1, ``unbounded_scale`` models
        (cost-weighted) accept any positive threshold.
        """
        bounded = True
        if model is not None:
            bounded = not self.model(model).unbounded_scale
        return _threshold(c, exact=self.exact, bounded=bounded)

    def _key(self, m: AdversaryModel, bucketization: Bucketization, k: int):
        return (m.name, m.params_key(), k, m.cache_key(bucketization))

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        bucketization: Bucketization,
        k: int,
        *,
        model: str | AdversaryModel = "implication",
    ):
        """Worst-case disclosure of ``bucketization`` against ``model`` with
        attacker power ``k`` (cached)."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        m = self.model(model)
        key = self._key(m, bucketization, k)
        self.stats.evaluations += 1
        if key in self._cache:
            self.stats.cache_hits += 1
            return self._cache[key]
        value = m.disclosure(bucketization, k, context=self.context)
        self._cache[key] = value
        return value

    def series(
        self,
        bucketization: Bucketization,
        ks: Iterable[int],
        *,
        model: str | AdversaryModel = "implication",
    ) -> dict[int, object]:
        """Worst case for several ``k`` values, batched.

        Already-cached ``k`` are answered from the cache; the rest go to the
        model's own batch path in one call (for ``implication`` a single
        MINIMIZE2 pass covers every ``k``, as ``max_disclosure_series``
        always did), and the results are cached individually so later single
        evaluations hit.
        """
        m = self.model(model)
        ks = sorted(set(ks))
        if ks and ks[0] < 0:
            raise ValueError(f"k must be non-negative, got {ks[0]}")
        result: dict[int, object] = {}
        missing: list[int] = []
        base_key = (m.name, m.params_key(), m.cache_key(bucketization))
        for k in ks:
            key = (base_key[0], base_key[1], k, base_key[2])
            self.stats.evaluations += 1
            if key in self._cache:
                self.stats.cache_hits += 1
                result[k] = self._cache[key]
            else:
                missing.append(k)
        if missing:
            computed = m.series(bucketization, missing, context=self.context)
            for k in missing:
                value = computed[k]
                self._cache[(base_key[0], base_key[1], k, base_key[2])] = value
                result[k] = value
        return result

    def evaluate_many(
        self,
        bucketizations: Iterable[Bucketization],
        ks: Iterable[int],
        *,
        model: str | AdversaryModel = "implication",
    ) -> list[dict[int, object]]:
        """One series per bucketization, in input order, all sharing this
        engine's cache and solver — the batched form a lattice sweep or an
        incremental republication wants."""
        ks = list(ks)
        return [
            self.series(bucketization, ks, model=model)
            for bucketization in bucketizations
        ]

    def compare(
        self,
        bucketization: Bucketization,
        ks: Iterable[int],
        *,
        models: Sequence[str | AdversaryModel] = ("implication", "negation"),
    ) -> dict[str, dict[int, object]]:
        """Cross-model comparison: ``{model name: {k: disclosure}}``.

        This is Figure 5 (solid implication line vs. dotted negation line) as
        one batched call; add any registered model name to extend the plot.
        Several differently-parameterized instances of one model get
        disambiguated keys (``weighted``, ``weighted#2``, ...) so no series
        is silently dropped.
        """
        result: dict[str, dict[int, object]] = {}
        for spec in models:
            m = self.model(spec)
            key, n = m.name, 1
            while key in result:
                n += 1
                key = f"{m.name}#{n}"
            result[key] = self.series(bucketization, ks, model=m)
        return result

    # ------------------------------------------------------------------
    # Derived queries
    # ------------------------------------------------------------------
    def witness(
        self,
        bucketization: Bucketization,
        k: int,
        *,
        model: str | AdversaryModel = "implication",
    ):
        """A concrete worst-case formula for ``model`` (not cached — witness
        objects reference real people, not just histogram shapes).

        Raises
        ------
        NotImplementedError
            If the model does not support witness reconstruction.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        m = self.model(model)
        return m.witness(bucketization, k, context=self.context)

    def is_safe(
        self,
        bucketization: Bucketization,
        c: float,
        k: int,
        *,
        model: str | AdversaryModel = "implication",
    ) -> bool:
        """(c,k)-safety (Definition 13) generalized to any adversary model:
        worst-case disclosure strictly below ``c``."""
        m = self.model(model)
        threshold = self.threshold(c, model=m)
        return self.evaluate(bucketization, k, model=m) < threshold

    def min_k_to_breach(
        self,
        bucketization: Bucketization,
        c: float,
        *,
        model: str | AdversaryModel = "implication",
    ) -> int:
        """Least attacker power whose worst case reaches ``c``.

        The search is bounded by ``max_b (d_b - 1)`` (enough negations to
        force certainty), which is guaranteed to suffice for the implication
        and negation adversaries.

        Raises
        ------
        SearchError
            If the model never reaches ``c`` within the bound (possible for
            models whose power does not grow with ``k``).
        """
        m = self.model(model)
        threshold = self.threshold(c, model=m)
        bound = max(b.distinct_count for b in bucketization.buckets) - 1
        series = self.series(bucketization, range(bound + 1), model=m)
        for k in range(bound + 1):
            if series[k] >= threshold:
                return k
        raise SearchError(
            f"the {m.name!r} adversary never reaches disclosure {c} "
            f"within k <= {bound}"
        )

    def worst_bucket(
        self,
        bucketization: Bucketization,
        k: int,
        *,
        model: str | AdversaryModel = "implication",
    ) -> int:
        """Index of a bucket attaining the model's worst case (what a greedy
        sanitizer should shrink next)."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        m = self.model(model)
        return m.worst_bucket(bucketization, k, context=self.context)

    # ------------------------------------------------------------------
    # Lattice search (Section 3.4), adversary-parametric
    # ------------------------------------------------------------------
    def node_predicate(
        self,
        table,
        lattice,
        c: float,
        k: int,
        *,
        model: str | AdversaryModel = "implication",
    ) -> Callable[[tuple], bool]:
        """A cached node-level safety predicate for the lattice searches.

        Monotonicity along the generalization order is Theorem 14's gift for
        the implication adversary and holds for every bucket-decomposable
        model in this package; as with the raw search functions it remains
        the caller's responsibility for custom plugins.
        """
        from repro.generalization.search import node_safety_predicate

        m = self.model(model)
        threshold = self.threshold(c, model=m)
        return node_safety_predicate(
            table,
            lattice,
            lambda bucketization: self.evaluate(bucketization, k, model=m)
            < threshold,
        )

    def find_minimal_safe_nodes(
        self,
        table,
        lattice,
        c: float,
        k: int,
        *,
        model: str | AdversaryModel = "implication",
        stats=None,
    ) -> list:
        """All minimal (c,k)-safe lattice nodes under ``model`` (the paper's
        modified-Incognito sweep, with this engine's cache behind it)."""
        from repro.generalization.search import find_minimal_safe_nodes

        predicate = self.node_predicate(table, lattice, c, k, model=model)
        return find_minimal_safe_nodes(lattice, predicate, stats=stats)

    def find_best_safe_node(
        self,
        table,
        lattice,
        c: float,
        k: int,
        utility: Callable[[tuple], float],
        *,
        model: str | AdversaryModel = "implication",
        stats=None,
    ):
        """The minimal safe node maximizing ``utility`` under ``model``."""
        from repro.generalization.search import find_best_safe_node

        predicate = self.node_predicate(table, lattice, c, k, model=model)
        return find_best_safe_node(lattice, predicate, utility, stats=stats)

    def binary_search_chain(
        self,
        table,
        lattice,
        chain: Sequence,
        c: float,
        k: int,
        *,
        model: str | AdversaryModel = "implication",
        stats=None,
    ):
        """Lowest safe node on a fine-to-coarse chain under ``model``."""
        from repro.generalization.search import binary_search_chain

        predicate = self.node_predicate(table, lattice, c, k, model=model)
        return binary_search_chain(chain, predicate, stats=stats)
