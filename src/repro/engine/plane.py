"""The signature plane: interned signatures as the engine's unit of work.

Every disclosure algorithm in this package sees a bucketization only through
its multiset of bucket *signatures* (sorted frequency vectors). Before this
module, each layer re-derived and re-hashed those signatures per call: the
engine hashed a ``frozenset`` of multiset items for every cache lookup, the
MINIMIZE1 memo hashed raw signature tuples, and batch evaluation re-did both
per bucketization. The :class:`SignaturePlane` does that work once:

- :meth:`SignaturePlane.intern` maps each distinct signature to a dense
  integer id (one tuple hash per *new* signature, ever);
- :meth:`SignaturePlane.encode` represents any bucketization as a compact
  id-multiset — a small sorted tuple of ``(signature id, count)`` pairs —
  which is the engine's cache key and the unit of work for batch execution;
- :meth:`SignaturePlane.decode` turns a key back into raw signatures, so a
  cache key is *portable*: it can be shipped to a worker process (which
  rebuilds an evaluation-equivalent bucketization via
  :meth:`~repro.bucketization.bucketization.Bucketization.from_signature_counts`)
  or persisted to disk and re-interned by a different engine.

On top of the plane, this module provides the engine's :class:`CachePolicy`
(entry-count bound, pinning behavior for lattice sweeps) and the parallel
executor :func:`parallel_series` used by
:meth:`~repro.engine.engine.DisclosureEngine.evaluate_many`: unique
id-multisets are chunked over a :class:`~concurrent.futures.ProcessPoolExecutor`
and merged back in deterministic input order, so parallel results are
bit-for-bit identical to the serial path.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.bucketization.bucketization import Bucketization

__all__ = [
    "SignaturePlane",
    "CachePolicy",
    "parallel_series",
    "evaluate_raw_multisets",
]

#: A plane-encoded bucketization: ``((signature id, count), ...)`` sorted by id.
PlaneKey = tuple
#: A portable (plane-independent) form: ``((signature, count), ...)``.
RawMultiset = tuple


class SignaturePlane:
    """Interns bucket signatures into dense integer ids, once per engine.

    Ids are assigned in first-seen order and are **plane-local**: two planes
    intern the same signatures to different ids, which is why everything that
    leaves the plane (worker processes, cache persistence) goes through
    :meth:`decode` first and is re-interned on arrival.

    Examples
    --------
    >>> plane = SignaturePlane()
    >>> b = Bucketization.from_value_lists([["a", "a", "b"], ["x", "x", "y"]])
    >>> plane.encode(b)                # both buckets share signature (2, 1)
    ((0, 2),)
    >>> plane.signature(0)
    (2, 1)
    >>> plane.decode(plane.encode(b))
    (((2, 1), 2),)
    """

    __slots__ = ("_ids", "_signatures")

    def __init__(self) -> None:
        self._ids: dict[tuple[int, ...], int] = {}
        self._signatures: list[tuple[int, ...]] = []

    def __len__(self) -> int:
        """Number of distinct signatures interned so far."""
        return len(self._signatures)

    def __contains__(self, signature) -> bool:
        return tuple(signature) in self._ids

    def intern(self, signature: Sequence[int]) -> int:
        """The dense id for ``signature`` (assigned on first sight)."""
        sig = tuple(signature)
        sig_id = self._ids.get(sig)
        if sig_id is None:
            sig_id = len(self._signatures)
            self._ids[sig] = sig_id
            self._signatures.append(sig)
        return sig_id

    def signature(self, sig_id: int) -> tuple[int, ...]:
        """The signature interned under ``sig_id``."""
        return self._signatures[sig_id]

    def signatures_since(self, start: int) -> tuple[tuple[int, ...], ...]:
        """The signatures interned at ids ``start, start+1, ...`` — the delta
        a persistent worker's plane mirror needs to catch up to this plane.

        Ids are dense and assigned in first-seen order, so a mirror that has
        replayed the first ``start`` signatures agrees with this plane on
        every id below ``start``; appending this delta (in order) extends the
        agreement to ``len(self)``.
        """
        return tuple(self._signatures[start:])

    def encode(self, bucketization: Bucketization) -> PlaneKey:
        """``bucketization`` as a compact id-multiset (sorted by id)."""
        return tuple(
            sorted(
                (self.intern(signature), count)
                for signature, count in bucketization.signature_items()
            )
        )

    def encode_counts(self, counts) -> PlaneKey:
        """Like :meth:`encode`, from raw ``(signature, count)`` pairs or a
        mapping — the re-interning half of a decode round-trip."""
        items = counts.items() if hasattr(counts, "items") else counts
        return tuple(
            sorted((self.intern(signature), count) for signature, count in items)
        )

    def probe(self, items) -> PlaneKey | None:
        """Like :meth:`encode_counts` but strictly **read-only**: interns
        nothing, and returns ``None`` as soon as any signature has never
        been seen by this plane (so the corresponding plane key cannot be
        in any cache keyed on it).

        Because it only performs dict reads, this is safe to call from a
        thread other than the one mutating the plane — the serving layer's
        event-loop cache peek relies on exactly that.
        """
        ids = self._ids
        out = []
        for signature, count in items:
            sig_id = ids.get(signature)
            if sig_id is None:
                return None
            out.append((sig_id, count))
        out.sort()
        return tuple(out)

    def decode(self, key: PlaneKey) -> RawMultiset:
        """A plane key back as portable ``((signature, count), ...)`` pairs."""
        return tuple(
            (self._signatures[sig_id], count) for sig_id, count in key
        )


@dataclass(frozen=True)
class CachePolicy:
    """Bounds and behavior of the engine's shared disclosure cache.

    Attributes
    ----------
    max_entries:
        Entry-count limit for the whole-bucketization cache. ``None`` keeps
        the legacy unbounded behavior; with a limit, the least recently used
        unpinned entries are evicted (counted in ``EngineStats.evictions``)
        so a long-running service's memory stays bounded.
    pin_sweeps:
        When True, entries inserted by the engine's lattice-search predicate
        (:meth:`~repro.engine.engine.DisclosureEngine.node_predicate`) are
        pinned for the engine's lifetime — a bounded cache serving both a
        sweep and ad-hoc traffic will evict the traffic, not the sweep.
        Pinned entries are only dropped by ``unpin_all()`` + later eviction.
    """

    max_entries: int | None = None
    pin_sweeps: bool = False

    def __post_init__(self) -> None:
        if self.max_entries is not None and self.max_entries <= 0:
            raise ValueError(
                f"max_entries must be positive or None, got {self.max_entries}"
            )


# ---------------------------------------------------------------------------
# Parallel batch execution
# ---------------------------------------------------------------------------
def evaluate_raw_multisets(
    model,
    raw_multisets: Sequence[RawMultiset],
    ks: Sequence[int],
    exact: bool,
    kernel: str = "auto",
) -> list[dict[int, object]]:
    """Worker entry point: one disclosure series per raw signature multiset.

    Runs in a worker process with a fresh
    :class:`~repro.engine.base.EngineContext`. Each multiset is rebuilt into
    a synthetic, evaluation-equivalent bucketization; the model's own batch
    path then produces the series. Only signature-decomposable models are
    dispatched here, so the rebuilt bucketization yields bit-for-bit the
    serial answer (same canonical signature order, same arithmetic, same
    ``kernel`` — callers ship the engine's already-resolved kernel so every
    worker computes on the identical code path).
    """
    from repro.engine.base import EngineContext  # worker-side; avoid cycle

    context = EngineContext(exact=exact, kernel=kernel)
    return [
        model.series(
            Bucketization.from_signature_counts(raw), ks, context=context
        )
        for raw in raw_multisets
    ]


def _strided_chunks(items: list, stride: int) -> list[list]:
    """Split ``items`` into ``stride`` round-robin chunks (balanced sizes,
    deterministic reassembly via the same striding)."""
    return [items[i::stride] for i in range(stride)]


def parallel_series(
    model,
    raw_multisets: Sequence[RawMultiset],
    ks: Iterable[int],
    *,
    exact: bool,
    workers: int,
    kernel: str = "auto",
    chunks_per_worker: int = 4,
) -> list[dict[int, object]]:
    """Evaluate many raw signature multisets over a process pool.

    Results come back in input order regardless of worker completion order
    (chunks are merged by their deterministic stride positions). Any pool
    failure — unpicklable plugin models, fork restrictions, a broken pool —
    propagates to the caller, which is expected to fall back to the serial
    path; a failure inside ``model.series`` itself also surfaces there, where
    the serial retry reproduces it with a clean traceback.
    """
    from concurrent.futures import ProcessPoolExecutor

    multisets = list(raw_multisets)
    ks = sorted(set(ks))
    if not multisets:
        return []
    workers = max(1, min(int(workers), len(multisets)))
    if workers == 1:
        return evaluate_raw_multisets(model, multisets, ks, exact, kernel)
    stride = min(len(multisets), workers * chunks_per_worker)
    chunks = _strided_chunks(multisets, stride)
    results: list = [None] * len(multisets)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(
                evaluate_raw_multisets, model, chunk, ks, exact, kernel
            )
            for chunk in chunks
        ]
        for index, future in enumerate(futures):
            results[index::stride] = future.result()
    return results
