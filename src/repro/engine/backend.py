"""Execution backends: how the engine fans batch evaluation out.

:meth:`~repro.engine.engine.DisclosureEngine.evaluate_many` (and the lattice
prewarm behind ``search --workers``) always reduces a batch to the *unique
uncached* plane keys; an :class:`ExecutionBackend` decides how those keys are
computed:

``serial``
    In-process, one key at a time. No processes are ever spawned; with this
    backend the engine ignores ``workers`` and evaluates every batch through
    its own cache and shared solver. The right choice on one core, under
    fork restrictions, or when determinism of *timing* matters (profiling).
``pool``
    A fresh :class:`~concurrent.futures.ProcessPoolExecutor` per call —
    exactly the PR-2 behavior, kept as the compatible default. Every call
    pays process spawn and ships full raw signatures; fine for one big
    sweep, wasteful for many small batches.
``persistent``
    Long-lived worker processes, each holding a worker-resident
    :class:`~repro.engine.plane.SignaturePlane` mirror. Batches ship only
    the *newly interned* signatures since the worker's last batch (a delta
    over the plane's dense ids) plus tiny id-multiset tasks, so in steady
    state each signature crosses the process boundary at most once per
    worker. Workers survive across calls (no per-call fork), respawn
    transparently after a crash, and can shut down after an idle timeout;
    :meth:`ExecutionBackend.close` (or the engine's context manager) ends
    them deterministically.

All three return bit-for-bit the serial path's values: each plane key is an
independent, deterministic unit of work, and the worker-side evaluation is
the same ``model.series`` on a synthetically rebuilt bucketization that the
``pool`` executor has always used.
"""

from __future__ import annotations

import abc
import threading
from collections.abc import Sequence
from typing import Any, ClassVar

from repro.engine.plane import (
    SignaturePlane,
    evaluate_raw_multisets,
    parallel_series,
)
from repro.errors import ReproError

__all__ = [
    "BackendError",
    "ExecutionBackend",
    "SerialBackend",
    "PoolBackend",
    "PersistentBackend",
    "create_backend",
    "available_backends",
]


class BackendError(ReproError):
    """A backend could not complete a batch (workers crashed twice, a model
    failed to pickle, ...). The engine treats this as "fall back to serial"."""


class ExecutionBackend(abc.ABC):
    """How a batch of unique plane keys gets evaluated.

    Attributes
    ----------
    name:
        Registry key (``"serial"``, ``"pool"``, ``"persistent"``) — also the
        CLI ``--backend`` choice.
    parallel:
        Whether :meth:`run` fans out to worker processes. The engine skips
        the fan-out path entirely (and never counts ``parallel_tasks``) for
        backends that declare False.
    """

    name: ClassVar[str]
    parallel: ClassVar[bool] = True

    @abc.abstractmethod
    def run(
        self,
        model,
        plane: SignaturePlane,
        plane_keys: Sequence[tuple],
        ks: Sequence[int],
        *,
        exact: bool,
        workers: int,
        kernel: str = "auto",
    ) -> list[dict[int, object]]:
        """One disclosure series per plane key, in input order.

        ``plane_keys`` are id-multisets on ``plane``; how much of the plane
        crosses a process boundary (full raw signatures vs. an incremental
        delta) is the backend's business. ``kernel`` is the engine's
        already-resolved concrete kernel (``"numpy"``/``"scalar"``), which
        every worker must honor so parallel results stay bit-identical to
        serial. Failures raise (typically :class:`BackendError`); the
        engine degrades to its serial path.
        """

    def close(self) -> None:
        """Release any long-lived resources (idempotent; default no-op)."""

    def __enter__(self) -> ExecutionBackend:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """Never spawn: evaluate every key in-process.

    :meth:`run` exists so a :class:`SerialBackend` is still a drop-in for
    direct callers, but the engine short-circuits on ``parallel = False``
    and routes batches through its own cache-and-shared-solver path instead
    (strictly better: cross-key solver reuse).
    """

    name: ClassVar[str] = "serial"
    parallel: ClassVar[bool] = False

    def run(self, model, plane, plane_keys, ks, *, exact, workers, kernel="auto"):
        raw = [plane.decode(key) for key in plane_keys]
        return evaluate_raw_multisets(model, raw, sorted(set(ks)), exact, kernel)


class PoolBackend(ExecutionBackend):
    """A fresh process pool per call (the PR-2 executor, unchanged).

    Ships every key as full raw signatures and pays pool spawn each call;
    kept as the compatible default and as the baseline the persistent
    backend is benchmarked against.
    """

    name: ClassVar[str] = "pool"

    def run(self, model, plane, plane_keys, ks, *, exact, workers, kernel="auto"):
        raw = [plane.decode(key) for key in plane_keys]
        return parallel_series(
            model, raw, ks, exact=exact, workers=workers, kernel=kernel
        )


# ---------------------------------------------------------------------------
# Persistent workers with incremental signature shipping
# ---------------------------------------------------------------------------
def _persistent_worker(conn) -> None:
    """Worker loop: mirror the parent plane, evaluate id-multiset tasks.

    The mirror is just a list — ids are dense and shipped in interning
    order, so ``mirror[sig_id]`` is the parent's ``plane.signature(sig_id)``
    once the delta is appended. The model and the evaluation context are
    worker-resident too: the model is re-shipped only when its identity
    changes, and the context's per-signature DP memo survives across
    batches, so steady-state batches ship (and re-derive) almost nothing.
    """
    from repro.bucketization.bucketization import Bucketization
    from repro.engine.base import EngineContext  # worker-side; avoid cycle

    mirror: list[tuple[int, ...]] = []
    model = None
    contexts: dict[tuple[bool, str], EngineContext] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message[0] == "stop":
            conn.close()
            return
        _, shipped_model, exact, kernel, reset, delta, tasks, ks = message
        if reset:
            mirror.clear()
        mirror.extend(delta)
        if shipped_model is not None:
            model = shipped_model
        try:
            context = contexts.get((exact, kernel))
            if context is None:
                context = EngineContext(exact=exact, kernel=kernel)
                contexts[(exact, kernel)] = context
            results = []
            for task in tasks:
                raw = tuple((mirror[sig_id], count) for sig_id, count in task)
                results.append(
                    model.series(
                        Bucketization.from_signature_counts(raw),
                        ks,
                        context=context,
                    )
                )
            reply = ("ok", results)
        except BaseException as exc:  # report, stay alive for the next batch
            reply = ("err", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


class _Worker:
    """Parent-side handle: process, pipe, and the shipping watermarks."""

    __slots__ = ("process", "conn", "plane", "shipped_upto", "model_key")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        #: The plane the mirror tracks (strong ref: identity must not be
        #: recycled while this worker believes its mirror matches it). A
        #: batch from a *different* plane resets the mirror and re-ships.
        self.plane: SignaturePlane | None = None
        #: How many plane signatures this worker's mirror already holds.
        self.shipped_upto = 0
        #: Identity of the model instance last shipped (None = none yet).
        self.model_key: tuple | None = None

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
        self.conn.close()


class PersistentBackend(ExecutionBackend):
    """Long-lived workers, each mirroring the engine's signature plane.

    Parameters
    ----------
    idle_timeout:
        Seconds of inactivity after which the worker processes are shut
        down (``None`` keeps them until :meth:`close`). The backend itself
        stays usable: the next batch respawns workers transparently — they
        simply start from an empty mirror again, so the first post-idle
        batch re-ships the full signature prefix.
    mp_context:
        A :mod:`multiprocessing` context (or context name); default is the
        platform default (``fork`` on Linux — cheap spawn, and plugin
        models need not be importable, matching the pool executor).

    Notes
    -----
    Crash handling is transparent: a dead pipe or worker makes the backend
    respawn every worker and retry the batch exactly once; a second failure
    raises :class:`BackendError` and the engine falls back to serial. A
    *model* error inside a worker is reported without killing the worker
    and also surfaces as :class:`BackendError` — the engine's serial retry
    then reproduces the genuine exception with a clean traceback.

    Each batch appends a record to :attr:`ship_log` (batch index, tasks,
    workers used, signatures shipped; a bounded deque — the last 256
    batches — with :attr:`batches_run` / :attr:`signatures_shipped`
    aggregating the full history) — the observable behind the delta
    protocol's "each signature at most once per worker" guarantee, asserted
    in ``benchmarks/bench_backend.py``.

    One backend may serve several engines: plane ids are plane-local, so a
    batch arriving from a different plane than a worker's mirror tracks
    resets that mirror and re-ships from scratch (correct, just not
    incremental across engines).
    """

    name: ClassVar[str] = "persistent"

    def __init__(
        self, *, idle_timeout: float | None = None, mp_context=None
    ) -> None:
        import multiprocessing

        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError(
                f"idle_timeout must be positive or None, got {idle_timeout}"
            )
        import collections

        if isinstance(mp_context, str):
            mp_context = multiprocessing.get_context(mp_context)
        self._mp = mp_context if mp_context is not None else multiprocessing
        self.idle_timeout = idle_timeout
        #: Bounded tail of per-batch shipping records (a service runs
        #: millions of batches; an unbounded list would be a slow leak).
        #: ``batches_run`` / ``signatures_shipped`` aggregate the full
        #: history.
        self.ship_log: collections.deque[dict[str, int]] = collections.deque(
            maxlen=256
        )
        self.batches_run = 0
        self.signatures_shipped = 0
        self.respawns = 0
        self._workers: list[_Worker] = []
        self._lock = threading.Lock()
        self._idle_timer: threading.Timer | None = None
        #: Bumped whenever the current timer is superseded (cancelled or
        #: re-armed); a firing whose generation is stale must not shut
        #: down workers a newer batch just used.
        self._timer_generation = 0

    # -- lifecycle ------------------------------------------------------
    def worker_count(self) -> int:
        """Live worker processes right now (0 after idle shutdown)."""
        with self._lock:
            return sum(1 for w in self._workers if w.process.is_alive())

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=_persistent_worker, args=(child_conn,), daemon=True
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    def _ensure_workers(self, count: int) -> list[_Worker]:
        self._workers = [w for w in self._workers if w.process.is_alive()]
        while len(self._workers) < count:
            self._workers.append(self._spawn())
        return self._workers[:count]

    def _stop_workers(self) -> None:
        workers, self._workers = self._workers, []
        for worker in workers:
            worker.stop()

    def _cancel_idle_timer(self) -> None:
        self._timer_generation += 1
        if self._idle_timer is not None:
            self._idle_timer.cancel()
            self._idle_timer = None

    def _arm_idle_timer(self) -> None:
        if self.idle_timeout is None:
            return
        self._timer_generation += 1
        timer = threading.Timer(
            self.idle_timeout,
            self._idle_shutdown,
            args=(self._timer_generation,),
        )
        timer.daemon = True
        self._idle_timer = timer
        timer.start()

    def _idle_shutdown(self, generation: int) -> None:
        with self._lock:
            if generation != self._timer_generation:
                # This firing raced a batch: it slipped past cancel() and
                # blocked on the lock while run() armed a fresh timer.
                # Stopping workers now would kill the pool the batch just
                # warmed — stand down and let the fresh timer decide.
                return
            self._idle_timer = None
            self._stop_workers()

    def close(self) -> None:
        """Shut every worker down (idempotent; the backend stays reusable —
        a later batch respawns, exactly as after an idle shutdown)."""
        with self._lock:
            self._cancel_idle_timer()
            self._stop_workers()

    # -- execution ------------------------------------------------------
    def run(self, model, plane, plane_keys, ks, *, exact, workers, kernel="auto"):
        keys = list(plane_keys)
        ks = sorted(set(ks))
        if not keys:
            return []
        workers = max(1, min(int(workers), len(keys)))
        with self._lock:
            self._cancel_idle_timer()
            try:
                try:
                    return self._run_once(
                        model, plane, keys, ks, exact, kernel, workers
                    )
                except _WorkerDied:
                    # Respawn the whole pool once and retry; mirrors restart
                    # empty, so the retry re-ships the full prefix.
                    self.respawns += 1
                    self._stop_workers()
                    try:
                        return self._run_once(
                            model, plane, keys, ks, exact, kernel, workers
                        )
                    except _WorkerDied as exc:
                        self._stop_workers()
                        raise BackendError(
                            "persistent workers died twice in one batch"
                        ) from exc
            finally:
                self._arm_idle_timer()

    def _run_once(self, model, plane, keys, ks, exact, kernel, workers):
        pool = self._ensure_workers(workers)
        chunks = [keys[i::len(pool)] for i in range(len(pool))]
        model_key = (type(model), model.name, model.params_key())
        plane_len = len(plane)
        shipped_total = 0
        active: list[tuple[_Worker, int]] = []
        for index, (worker, chunk) in enumerate(zip(pool, chunks)):
            if not chunk:
                continue
            # A backend can serve several engines: a batch from a different
            # plane resets the worker's mirror (ids are plane-local).
            reset = worker.plane is not plane
            since = 0 if reset else worker.shipped_upto
            delta = plane.signatures_since(since)
            ship_model = model if worker.model_key != model_key else None
            try:
                worker.conn.send(
                    ("batch", ship_model, exact, kernel, reset, delta, chunk, ks)
                )
            except (BrokenPipeError, OSError) as exc:
                raise _WorkerDied(str(exc)) from exc
            except Exception as exc:
                # Pickling failed before any bytes hit the pipe (Connection
                # serializes fully first): this payload cannot cross a
                # process boundary at all. Workers already sent to this
                # loop have replies in flight that nothing will consume —
                # a later batch would read them as *its* answers — so the
                # pool must go down with the batch.
                self._stop_workers()
                raise BackendError(f"cannot ship batch: {exc}") from exc
            # The worker syncs its mirror unconditionally on receipt, so
            # the watermark advances even if evaluation later fails.
            worker.plane = plane
            worker.shipped_upto = plane_len
            worker.model_key = model_key
            shipped_total += len(delta)
            active.append((worker, index))
        results: list = [None] * len(keys)
        errors: list[str] = []
        for worker, index in active:
            try:
                reply = worker.conn.recv()
            except (EOFError, OSError) as exc:
                raise _WorkerDied(str(exc)) from exc
            if reply[0] == "err":
                errors.append(reply[1])
                continue
            results[index::len(pool)] = reply[1]
        self.ship_log.append(
            {
                "batch": self.batches_run,
                "tasks": len(keys),
                "workers_used": len(active),
                "shipped_signatures": shipped_total,
            }
        )
        self.batches_run += 1
        self.signatures_shipped += shipped_total
        if errors:
            raise BackendError(
                f"model evaluation failed in a worker: {errors[0]}"
            )
        return results


class _WorkerDied(Exception):
    """Internal: a worker process or its pipe went away mid-batch."""


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    PoolBackend.name: PoolBackend,
    PersistentBackend.name: PersistentBackend,
}


def create_backend(
    backend: str | ExecutionBackend, **kwargs: Any
) -> ExecutionBackend:
    """Resolve a backend name (or pass through an instance), forwarding
    ``kwargs`` to the constructor.

    Raises
    ------
    ValueError
        If the name is not one of :func:`available_backends`.
    """
    if isinstance(backend, ExecutionBackend):
        if kwargs:
            raise ValueError("kwargs are only valid with a backend *name*")
        return backend
    cls = _BACKENDS.get(backend)
    if cls is None:
        raise ValueError(
            f"unknown execution backend {backend!r}; "
            f"available: {', '.join(available_backends())}"
        )
    return cls(**kwargs)


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted (the CLI's ``--backend`` choices)."""
    return tuple(sorted(_BACKENDS))
