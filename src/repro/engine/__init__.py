"""Unified adversary-model engine: one pluggable disclosure layer.

The framework of the paper is parametric in the background-knowledge
language; this subsystem makes that parameter a first-class runtime object.

- :mod:`repro.engine.plane` — the :class:`SignaturePlane` (bucket signatures
  interned to dense ids; any bucketization becomes a compact id-multiset —
  the single cache key and unit of work), :class:`CachePolicy` (LRU bound,
  sweep pinning), and the deterministic process-pool executor behind
  parallel batch evaluation.
- :mod:`repro.engine.backend` — the :class:`ExecutionBackend` abstraction
  (``serial`` in-process, ``pool`` per-call process pool, ``persistent``
  long-lived workers with incremental signature shipping) behind every
  parallel batch.
- :mod:`repro.engine.base` — the :class:`AdversaryModel` protocol, the
  string-keyed registry, and the :class:`EngineContext` shared state.
- :mod:`repro.engine.models` — the five built-in models (``implication``,
  ``negation``, ``weighted``, ``probabilistic``, ``sampling``), each a thin
  wrapper over the corresponding :mod:`repro.core` algorithm.
- :mod:`repro.engine.models_distribution` — Wong et al.'s distribution-based
  worst-case adversary (``distribution``) as a one-file registry plugin.
- :mod:`repro.engine.engine` — the :class:`DisclosureEngine`: one bounded
  LRU cache on the signature plane shared across *all* models, batch
  evaluation over many ``k`` / bucketizations / models (optionally over a
  process pool with cache warm-back), cache persistence, uniform
  exact-float handling and witness reconstruction, plus
  adversary-parametric lattice search.

Every consumer in this package — :class:`~repro.core.safety.SafetyChecker`,
greedy suppression, Incognito/lattice search, the Figure 5/6 experiments and
the CLI ``--adversary`` flag — goes through this layer, so a new adversary is
a one-file plugin: subclass :class:`AdversaryModel`, decorate with
:func:`register_adversary`, and it is available everywhere by name.
"""

from repro.engine.backend import (
    BackendError,
    ExecutionBackend,
    PersistentBackend,
    PoolBackend,
    SerialBackend,
    available_backends,
    create_backend,
)
from repro.engine.base import (
    AdversaryModel,
    EngineContext,
    available_adversaries,
    canonical_params,
    get_adversary,
    param_schema,
    register_adversary,
)
from repro.engine.engine import DisclosureEngine, EngineStats
from repro.engine.models import (
    ImplicationAdversary,
    NegationAdversary,
    ProbabilisticAdversary,
    SamplingAdversary,
    WeightedAdversary,
)
from repro.engine.models_distribution import (
    DistributionAdversary,
    DistributionWitness,
)
from repro.engine.plane import CachePolicy, SignaturePlane

__all__ = [
    "AdversaryModel",
    "EngineContext",
    "DisclosureEngine",
    "EngineStats",
    "SignaturePlane",
    "CachePolicy",
    "BackendError",
    "ExecutionBackend",
    "SerialBackend",
    "PoolBackend",
    "PersistentBackend",
    "create_backend",
    "available_backends",
    "register_adversary",
    "get_adversary",
    "available_adversaries",
    "canonical_params",
    "param_schema",
    "ImplicationAdversary",
    "NegationAdversary",
    "WeightedAdversary",
    "ProbabilisticAdversary",
    "SamplingAdversary",
    "DistributionAdversary",
    "DistributionWitness",
]
