"""Distribution-based worst-case background knowledge (Wong et al.).

Wong, Fu, Wang, Xu, Pei & Yu, *Anonymization with Worst-Case
Distribution-Based Background Knowledge* (arXiv:0909.1127), model an
adversary who knows not facts about individuals but a *distribution* over
the sensitive attribute (demographic priors, published statistics), and ask
for the worst case over all distributions the adversary might hold.

Adaptation to this package's framework
--------------------------------------
Unconstrained distributional knowledge trivially forces certainty (tilt all
prior mass onto one value), so — like the source paper — the worst case must
range over a *bounded* family. We bound the prior's skew: the adversary's
per-value prior weights ``d(s)`` satisfy ``max d / min d <= r``, and the
attacker-power parameter ``k`` maps to the ratio bound ``r = k + 1``
(``k = 0`` is the uniform prior, i.e. the zero-knowledge baseline; each
additional "piece" of distributional knowledge lets the prior skew one unit
further). Re-weighting a bucket's histogram by such a prior gives the
posterior ``d(s) n_b(s) / sum_s' d(s') n_b(s')``; the worst case over the
family puts weight ``r`` on the target value and 1 everywhere else, and is
maximized by each bucket's most frequent value (the posterior is increasing
in ``n_b(s)``), giving the closed form

    max_b  r * n_b(s_b^0) / (r * n_b(s_b^0) + (n_b - n_b(s_b^0)))

This is signature-decomposable (the engine evaluates it on the interned
signature plane, in parallel if asked), supports exact arithmetic, and is
monotone under bucket merging: the expression is increasing in the bucket's
top fraction, and a merged bucket's top fraction never exceeds the larger of
its parts' (same argument as for the negation adversary), so Theorem 14-style
lattice pruning remains sound.

Registered as ``distribution`` — immediately available in ``--adversary``,
``compare``, the lattice searches, and the experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, ClassVar

from repro.engine.base import AdversaryModel, register_adversary

__all__ = ["DistributionAdversary", "DistributionWitness"]


def _bucket_disclosure(signature, tilt, *, exact: bool):
    """Worst-case posterior for one bucket under a ratio-``tilt`` prior."""
    n = sum(signature)
    top = signature[0]
    rest = n - top
    if exact:
        t = Fraction(tilt).limit_denominator(10**9)
        return (t * top) / (t * top + rest)
    return (tilt * top) / (tilt * top + rest)


@dataclass(frozen=True)
class DistributionWitness:
    """A concrete worst-case distributional prior.

    Attributes
    ----------
    bucket_index:
        The bucket whose re-weighted posterior attains the worst case.
    person:
        A person in that bucket (any member; the prior is per-value).
    target_value:
        The value carrying the maximal prior weight (the bucket's most
        frequent value).
    tilt:
        The prior-ratio bound ``r``: the witness prior weights
        ``target_value`` by ``r`` and every other value by 1.
    disclosure:
        The resulting posterior ``Pr(t_person = target_value)``.
    """

    bucket_index: int
    person: Any
    target_value: Any
    tilt: float
    disclosure: object


@register_adversary
class DistributionAdversary(AdversaryModel):
    """Worst-case distribution-based background knowledge (Wong et al.).

    Parameters
    ----------
    tilt:
        Optional fixed prior-ratio bound ``r >= 1``. The default ``None``
        derives it from the attacker power as ``r = k + 1``, making the
        model a ``k``-indexed family like the paper's languages; a fixed
        tilt models a known bound on how skewed any external statistic can
        be, independent of ``k``.
    """

    name: ClassVar[str] = "distribution"
    supports_witness: ClassVar[bool] = True

    def __init__(self, tilt: float | None = None) -> None:
        if tilt is not None and tilt < 1:
            raise ValueError(
                f"tilt must be >= 1 (1 = uniform prior), got {tilt}"
            )
        self.tilt = tilt

    def params_key(self) -> tuple:
        return (self.tilt,)

    def _ratio(self, k: int):
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return self.tilt if self.tilt is not None else k + 1

    def disclosure(self, bucketization, k, *, context):
        tilt = self._ratio(k)
        return max(
            _bucket_disclosure(signature, tilt, exact=context.exact)
            for signature, _ in bucketization.signature_items()
        )

    def witness(self, bucketization, k, *, context) -> DistributionWitness:
        tilt = self._ratio(k)
        buckets = bucketization.buckets
        index = max(
            range(len(buckets)),
            key=lambda i: _bucket_disclosure(
                buckets[i].signature, tilt, exact=context.exact
            ),
        )
        bucket = buckets[index]
        return DistributionWitness(
            bucket_index=index,
            person=bucket.person_ids[0],
            target_value=bucket.top_value,
            tilt=float(tilt),
            disclosure=_bucket_disclosure(
                bucket.signature, tilt, exact=context.exact
            ),
        )

    def worst_bucket(self, bucketization, k, *, context) -> int:
        tilt = self._ratio(k)
        buckets = bucketization.buckets
        return max(
            range(len(buckets)),
            key=lambda i: _bucket_disclosure(
                buckets[i].signature, tilt, exact=context.exact
            ),
        )
