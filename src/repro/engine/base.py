"""The adversary-model protocol and its string-keyed registry.

The paper's framework is *parametric* in the background-knowledge language:
Definition 6 fixes a family of formulas and asks for the worst case over it,
and Section 6 explicitly invites other families (negated atoms, cost-weighted
atoms, probabilistic knowledge). In this package each family used to be a
disconnected function cluster; this module gives them one shape:

- :class:`AdversaryModel` — the protocol every background-knowledge language
  implements: a worst-case ``disclosure`` for attacker power ``k``, an
  optional batched ``series`` over many ``k``, an optional ``witness``
  reconstruction, and the bits the engine needs for memoization
  (:meth:`AdversaryModel.cache_key`, :meth:`AdversaryModel.params_key`).
- :class:`EngineContext` — the shared evaluation state a
  :class:`~repro.engine.engine.DisclosureEngine` threads through every model
  call: the exact/float mode and one :class:`~repro.core.minimize1.Minimize1Solver`
  whose per-signature DP memo is reused across models, bucketizations, and
  calls (the Section 3.3.3 incremental-cost remark, generalized).
- ``register_adversary`` / ``get_adversary`` / ``available_adversaries`` —
  the registry that makes a new adversary a one-file plugin: subclass,
  decorate, and every consumer (sanitizers, lattice search, experiments,
  CLI ``--adversary``) can use it by name.
"""

from __future__ import annotations

import abc
import inspect
from collections.abc import Hashable, Iterable, Mapping
from typing import Any, ClassVar

from repro.bucketization.bucketization import Bucketization
from repro.core.minimize1 import Minimize1Solver
from repro.engine.plane import SignaturePlane
from repro.errors import UnknownAdversaryError

__all__ = [
    "EngineContext",
    "AdversaryModel",
    "register_adversary",
    "get_adversary",
    "available_adversaries",
    "canonical_params",
    "param_schema",
]


class EngineContext:
    """Shared evaluation state handed to every model call by the engine.

    Attributes
    ----------
    exact:
        The engine's arithmetic mode. Models that support it return
        :class:`~fractions.Fraction` when True; models that are inherently
        floating-point (``supports_exact = False``) return floats either way.
    plane:
        The shared :class:`~repro.engine.plane.SignaturePlane`: bucket
        signatures are interned to dense integer ids once, and every layer —
        the engine cache, the MINIMIZE1 memo, batch execution — keys on the
        interned form instead of re-hashing raw tuples.
    solver:
        One shared :class:`~repro.core.minimize1.Minimize1Solver`. Its memo is
        keyed by the plane's interned signature ids, so per-bucket DP work
        done for one model or one bucketization is reused by every later call
        on the same context.
    kernel:
        The *concrete* kernel the solver resolved to (``"numpy"`` or
        ``"scalar"``). The constructor accepts the full selector
        (``auto``/``numpy``/``scalar``); exact mode always resolves to
        scalar — see :func:`repro.core.kernel.resolve_kernel`.
    scratch:
        A free-form dict for model-private cross-call state (keyed by model
        name by convention); lets plugins memoize beyond what the engine's
        whole-bucketization cache covers.
    """

    __slots__ = ("exact", "plane", "solver", "kernel", "scratch")

    def __init__(
        self,
        *,
        exact: bool = False,
        plane: SignaturePlane | None = None,
        kernel: str = "auto",
    ) -> None:
        self.exact = exact
        self.plane = plane if plane is not None else SignaturePlane()
        self.solver = Minimize1Solver(
            exact=exact, intern=self.plane.intern, kernel=kernel
        )
        self.kernel = self.solver.kernel
        self.scratch: dict[Any, Any] = {}


class AdversaryModel(abc.ABC):
    """One background-knowledge language, evaluated in the worst case.

    Subclasses wrap an algorithm computing Definition 6 (or its analogue) for
    their language and declare:

    ``name``
        The registry key (``"implication"``, ``"negation"``, ...).
    ``supports_exact``
        Whether the model honours ``context.exact`` with Fraction arithmetic.
    ``supports_witness``
        Whether :meth:`witness` reconstructs a concrete worst-case formula.
    ``unbounded_scale``
        True when :meth:`disclosure` is not a probability (e.g. cost-weighted
        models, whose scale is ``max weight``): safety thresholds are then
        validated as positive only, not clamped to (0, 1].
    ``monotone``
        Whether the worst case is (believed) monotone non-increasing under
        bucket merging — what Theorem 14 proves for implications and the
        lattice searches' pruning relies on. Estimators whose answers are
        noisy near a threshold (``sampling``) declare False so consumers can
        warn before pruning on them.
    """

    name: ClassVar[str]
    supports_exact: ClassVar[bool] = True
    supports_witness: ClassVar[bool] = False
    unbounded_scale: ClassVar[bool] = False
    monotone: ClassVar[bool] = True

    # ------------------------------------------------------------------
    # Required: the worst case itself
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def disclosure(
        self, bucketization: Bucketization, k: int, *, context: EngineContext
    ):
        """Worst-case disclosure of ``bucketization`` against this adversary
        with power ``k`` (the model-specific analogue of Definition 6)."""

    # ------------------------------------------------------------------
    # Optional: batching, witnesses, sanitizer support
    # ------------------------------------------------------------------
    def series(
        self,
        bucketization: Bucketization,
        ks: Iterable[int],
        *,
        context: EngineContext,
    ) -> dict[int, object]:
        """Worst case for several ``k`` at once.

        The default evaluates each ``k`` independently; models whose
        computation shares work across ``k`` (the implication DP computes
        every ``k' <= max k`` in one pass) override this.
        """
        return {
            k: self.disclosure(bucketization, k, context=context)
            for k in sorted(set(ks))
        }

    def witness(
        self, bucketization: Bucketization, k: int, *, context: EngineContext
    ):
        """A concrete worst-case formula object achieving :meth:`disclosure`.

        Every witness object exposes at least a ``disclosure`` attribute; the
        rest is model-specific (implications, negated atoms, ...). Models
        with ``supports_witness = False`` raise :class:`NotImplementedError`.
        """
        raise NotImplementedError(
            f"the {self.name!r} adversary model does not reconstruct witnesses"
        )

    def worst_bucket(
        self, bucketization: Bucketization, k: int, *, context: EngineContext
    ) -> int:
        """Index of a bucket whose local worst case attains the global one.

        Sanitizers (greedy suppression) use this to decide where to remove
        tuples. The default evaluates each bucket as a singleton
        bucketization and returns the first argmax — correct for any model
        whose worst case decomposes as a max over buckets.
        """
        best_index = 0
        best = None
        for index, bucket in enumerate(bucketization.buckets):
            value = self.disclosure(Bucketization([bucket]), k, context=context)
            if best is None or value > best:
                best, best_index = value, index
        return best_index

    def worst_value(self, bucket, k: int, *, context: EngineContext):
        """The sensitive value driving ``bucket``'s worst case — what a
        greedy suppression sanitizer should remove a tuple of.

        For probability-scaled models the most frequent value drives the
        worst case (Lemma 12 places the consequent there), which is the
        default; cost-weighted models override this with the cost-optimal
        target.
        """
        return bucket.top_value

    # ------------------------------------------------------------------
    # Memoization hooks
    # ------------------------------------------------------------------
    def signature_decomposable(self) -> bool:
        """Whether this instance's answers depend on the bucketization only
        through its signature multiset.

        When True (the default — every closed-form and DP model in the
        paper), the engine keys this model on the interned signature plane
        and may evaluate it in worker processes on synthetically rebuilt
        bucketizations (:func:`~repro.engine.plane.evaluate_raw_multisets`).
        Models sensitive to more — Monte Carlo draws that depend on value
        order, cost weights attached to concrete values — return False and
        are cached under :meth:`cache_key` and evaluated serially instead.
        """
        return True

    def params_key(self) -> tuple:
        """Hashable identity of the model's parameters (weights, confidence,
        sample sizes, ...) — part of the engine's cache key so differently
        parameterized instances never share entries."""
        return ()

    def cache_key(self, bucketization: Bucketization) -> Hashable:
        """What the model's answer depends on, as a hashable key.

        Only consulted when :meth:`signature_decomposable` is False —
        decomposable models are keyed on the engine's interned signature
        plane instead. The default is the signature multiset (kept for
        plugins that override decomposability without providing a finer
        key); models sensitive to more (e.g. Monte Carlo draws depend on
        value order) override this.
        """
        return bucketization.signature_items()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_REGISTRY: dict[str, type[AdversaryModel]] = {}


def register_adversary(cls: type[AdversaryModel]) -> type[AdversaryModel]:
    """Class decorator: add an :class:`AdversaryModel` subclass under its
    ``name``. Re-registering a different class under a taken name is an
    error; re-registering the same class (module reloads) is a no-op."""
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name:
        raise ValueError(f"{cls.__qualname__} must define a non-empty `name`")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"adversary model name {name!r} already registered "
            f"by {existing.__qualname__}"
        )
    _REGISTRY[name] = cls
    return cls


def get_adversary(model: str | AdversaryModel, **params: Any) -> AdversaryModel:
    """Resolve a model name (or pass through an instance) to an
    :class:`AdversaryModel`, forwarding ``params`` to the constructor.

    Raises
    ------
    UnknownAdversaryError
        If the name is not registered.
    """
    if isinstance(model, AdversaryModel):
        if params:
            raise ValueError("params are only valid with a model *name*")
        return model
    try:
        cls = _REGISTRY[model]
    except KeyError:
        raise UnknownAdversaryError(
            f"unknown adversary model {model!r}; "
            f"registered models: {', '.join(sorted(_REGISTRY))}"
        ) from None
    return cls(**params)


def available_adversaries() -> tuple[str, ...]:
    """Registered model names, sorted (the CLI's ``--adversary`` choices)."""
    return tuple(sorted(_REGISTRY))


def _canonical_value(value: Any) -> Hashable:
    if isinstance(value, Mapping):
        # Key-sorted by repr, matching WeightedAdversary.params_key's
        # ordering, so the same weights always canonicalize identically.
        return (
            "map",
            tuple(
                sorted(
                    ((k, _canonical_value(v)) for k, v in value.items()),
                    key=lambda kv: repr(kv[0]),
                )
            ),
        )
    if isinstance(value, (list, tuple)):
        return tuple(_canonical_value(v) for v in value)
    return value


def canonical_params(params: Mapping[str, Any] | None) -> tuple:
    """Constructor kwargs as a stable, hashable, name-sorted tuple.

    This is the *identity* of a parameterization, shared by every layer
    that keys on it: the engine's model-instance memo, the serving tier's
    coalescer groups, and the shard router's routing hash. Two kwargs
    mappings that construct interchangeable model instances (same names,
    ``==`` values) canonicalize equal; ``None`` and ``{}`` both mean
    "defaults" and canonicalize to ``()``.
    """
    if not params:
        return ()
    return tuple(
        sorted((name, _canonical_value(value)) for name, value in params.items())
    )


def param_schema(model: str | type[AdversaryModel]) -> list[dict[str, Any]]:
    """A machine-usable description of a model's constructor parameters.

    One entry per ``__init__`` parameter: ``name``, ``type`` (the
    annotation as written) and ``default`` (JSON-safe: scalars pass
    through, anything richer is stringified). ``/models`` serves this so
    clients can discover tunables without reading source, and the
    conformance suite asserts the schema round-trips through
    :func:`get_adversary` — defaults rebuilt from the schema must yield
    the default :meth:`AdversaryModel.params_key`.
    """
    cls = _REGISTRY[model] if isinstance(model, str) else model
    schema: list[dict[str, Any]] = []
    variadic = (
        inspect.Parameter.VAR_POSITIONAL,
        inspect.Parameter.VAR_KEYWORD,
    )
    for parameter in inspect.signature(cls.__init__).parameters.values():
        if parameter.name == "self" or parameter.kind in variadic:
            # ``self`` is not a tunable; *args/**kwargs are what
            # ``object.__init__`` shows for parameterless models.
            continue
        annotation = parameter.annotation
        if annotation is inspect.Parameter.empty:
            annotation = "Any"
        default: Any = None
        if parameter.default is not inspect.Parameter.empty:
            default = parameter.default
        if not isinstance(default, (str, int, float, bool, type(None))):
            default = str(default)
        schema.append(
            {
                "name": parameter.name,
                "type": str(annotation),
                "default": default,
            }
        )
    return schema
