"""repro — Worst-Case Background Knowledge for Privacy-Preserving Data Publishing.

A complete, self-contained reproduction of Martin, Kifer, Machanavajjhala,
Gehrke & Halpern (ICDE 2007): the ``L^k_basic`` background-knowledge language,
the polynomial-time worst-case disclosure algorithms (MINIMIZE1/MINIMIZE2),
(c,k)-safety, lattice search for minimally sanitized generalizations, the
k-anonymity/ℓ-diversity baselines, and the paper's Adult-dataset evaluation
(Figures 5 and 6).

Quickstart
----------
>>> from repro import Bucketization, max_disclosure, is_ck_safe
>>> b = Bucketization.from_value_lists([
...     ["Flu", "Flu", "Lung Cancer", "Lung Cancer", "Mumps"],
... ])
>>> round(max_disclosure(b, k=1), 4)   # one basic implication
0.6667
>>> is_ck_safe(b, c=0.7, k=1)
True

Engine architecture
-------------------
The framework is parametric in the background-knowledge language, and so is
this package: every disclosure computation flows through
:mod:`repro.engine`, a pluggable adversary-model layer.

- :class:`AdversaryModel` is the protocol one background-knowledge language
  implements (worst-case ``disclosure``, batched ``series``, optional
  ``witness`` and ``worst_bucket``); a string-keyed registry
  (:func:`register_adversary` / :func:`get_adversary` /
  :func:`available_adversaries`) holds the built-ins — ``implication``
  (``L^k_basic``), ``negation`` (ℓ-diversity), ``weighted`` (cost-based),
  ``probabilistic`` (Jeffrey conditionalization) and ``sampling``
  (Monte Carlo).
- :class:`DisclosureEngine` evaluates any registered model with one shared
  cache keyed by ``(model, params, k, signature multiset)`` and one shared
  MINIMIZE1 solver, and offers batch APIs (``series``, ``evaluate_many``,
  ``compare``) plus uniform exact/float handling, safety checks, and
  adversary-parametric lattice search.
- Every consumer — :class:`SafetyChecker` / :func:`is_ck_safe`, greedy
  :func:`suppress_to_safety`, the lattice searches, the Figure 5/6
  experiments, and the CLI ``--adversary`` flag — is a thin wrapper over the
  engine, so registering a new model makes it available everywhere at once.

>>> from repro import DisclosureEngine
>>> engine = DisclosureEngine()
>>> round(engine.evaluate(b, 1, model="negation"), 4)
0.6667

See ``README.md`` for the architecture and ``DESIGN.md`` for the paper
mapping.
"""

from repro.bucketization import (
    Bucket,
    Bucketization,
    anatomize,
    mondrian_partition,
    suppress_to_safety,
    swap_sensitive_values,
)
from repro.core import (
    Minimize1Solver,
    SafetyChecker,
    WorstCaseWitness,
    exact_disclosure_risk,
    is_ck_safe,
    jeffrey_probability,
    max_disclosure,
    max_disclosure_negations,
    max_disclosure_series,
    min_k_to_breach,
    probability,
    sample_disclosure_risk,
    sample_probability,
    weighted_implication_bounds,
    weighted_negation_disclosure,
    worst_case_witness,
)
from repro.data import (
    ADULT_SCHEMA,
    Schema,
    Table,
    adult_hierarchies,
    generate_adult,
)
from repro.engine import (
    AdversaryModel,
    CachePolicy,
    DisclosureEngine,
    EngineStats,
    SignaturePlane,
    available_adversaries,
    get_adversary,
    register_adversary,
)
from repro.errors import ReproError, UnknownAdversaryError
from repro.generalization import (
    GeneralizationLattice,
    Hierarchy,
    binary_search_chain,
    bucketize_at,
    find_best_safe_node,
    find_minimal_safe_nodes,
    generalize_table,
    node_safety_predicate,
)
from repro.knowledge import (
    Atom,
    BasicImplication,
    Conjunction,
    parse_atom,
    parse_conjunction,
    parse_implication,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data
    "Schema",
    "Table",
    "ADULT_SCHEMA",
    "generate_adult",
    "adult_hierarchies",
    # bucketization & sanitizers
    "Bucket",
    "Bucketization",
    "anatomize",
    "mondrian_partition",
    "suppress_to_safety",
    "swap_sensitive_values",
    # knowledge
    "Atom",
    "BasicImplication",
    "Conjunction",
    "parse_atom",
    "parse_implication",
    "parse_conjunction",
    # core
    "max_disclosure",
    "max_disclosure_series",
    "max_disclosure_negations",
    "min_k_to_breach",
    "is_ck_safe",
    "SafetyChecker",
    "Minimize1Solver",
    "probability",
    "exact_disclosure_risk",
    "sample_probability",
    "sample_disclosure_risk",
    "jeffrey_probability",
    "weighted_negation_disclosure",
    "weighted_implication_bounds",
    "worst_case_witness",
    "WorstCaseWitness",
    # engine
    "AdversaryModel",
    "DisclosureEngine",
    "EngineStats",
    "SignaturePlane",
    "CachePolicy",
    "register_adversary",
    "get_adversary",
    "available_adversaries",
    # generalization
    "Hierarchy",
    "GeneralizationLattice",
    "generalize_table",
    "bucketize_at",
    "find_minimal_safe_nodes",
    "find_best_safe_node",
    "binary_search_chain",
    "node_safety_predicate",
    # errors
    "ReproError",
    "UnknownAdversaryError",
]
