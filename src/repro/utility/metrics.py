"""Standard utility metrics for anonymized data.

Lower is better for :func:`discernibility`, :func:`average_bucket_size` and
:func:`generalization_height`; higher is better for :func:`precision`. All
are standard in the k-anonymity literature (Bayardo & Agrawal; LeFevre et
al.; Samarati) and serve as the utility functions of Section 3.4.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.bucketization.bucketization import Bucketization
from repro.generalization.lattice import GeneralizationLattice

__all__ = [
    "discernibility",
    "average_bucket_size",
    "generalization_height",
    "precision",
]


def discernibility(bucketization: Bucketization) -> int:
    """Discernibility metric: ``sum_b n_b^2``.

    Charges every tuple the size of its bucket — the number of tuples it is
    indistinguishable from. Minimal (= total size) for singleton buckets,
    maximal (= n^2) for one big bucket.
    """
    return sum(bucket.size**2 for bucket in bucketization.buckets)


def average_bucket_size(bucketization: Bucketization) -> float:
    """Mean bucket size ``n / |B|`` (the C_avg normalization without the
    target-k denominator)."""
    return bucketization.total_size / len(bucketization)


def generalization_height(node: Sequence[int]) -> int:
    """Height of a lattice node: total levels of generalization applied
    (Samarati's minimal-generalization objective)."""
    return sum(node)


def precision(lattice: GeneralizationLattice, node: Sequence[int]) -> float:
    """Samarati/Sweeney *Prec*: ``1 - mean_i(level_i / max_level_i)``.

    1 for the bottom node (raw data), 0 for full suppression of every
    attribute. Attributes whose hierarchy has a single level (nothing to
    generalize) are skipped.
    """
    node = lattice.validate(node)
    fractions = []
    for attribute, level in zip(lattice.attributes, node):
        maximum = lattice.hierarchies[attribute].max_level
        if maximum > 0:
            fractions.append(level / maximum)
    if not fractions:
        return 1.0
    return 1.0 - sum(fractions) / len(fractions)
