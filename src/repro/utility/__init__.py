"""Utility measurement: how much analytical value a sanitization preserves.

The paper's notion of a "minimally sanitized" bucketization exists precisely
to preserve utility (Section 3.4); these metrics order candidate
generalizations so :func:`repro.generalization.search.find_best_safe_node`
can pick among the minimal safe ones.
"""

from repro.utility.entropy import (
    bucket_entropies,
    min_bucket_entropy,
)
from repro.utility.metrics import (
    average_bucket_size,
    discernibility,
    generalization_height,
    precision,
)

__all__ = [
    "discernibility",
    "average_bucket_size",
    "generalization_height",
    "precision",
    "bucket_entropies",
    "min_bucket_entropy",
]
