"""Entropy statistics of a bucketization's sensitive distributions.

Figure 6 of the paper characterizes anonymized tables by the *minimum* over
buckets of the sensitive-attribute entropy — intuitively, the table's most
skewed (least private) bucket. Natural log is used throughout (the paper's
x-axis range [1, 2.4] sits below ``ln 14 ~ 2.64`` for the 14-value
Occupation domain).
"""

from __future__ import annotations

import math

from repro.bucketization.bucketization import Bucketization

__all__ = ["bucket_entropies", "min_bucket_entropy"]


def bucket_entropies(
    bucketization: Bucketization, *, base: float = math.e
) -> list[float]:
    """Entropy of each bucket's sensitive distribution, in bucket order."""
    return [bucket.entropy(base=base) for bucket in bucketization.buckets]


def min_bucket_entropy(
    bucketization: Bucketization, *, base: float = math.e
) -> float:
    """The minimum bucket entropy — Figure 6's x-axis."""
    return min(bucket_entropies(bucketization, base=base))
