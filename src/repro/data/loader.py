"""CSV persistence for tables, including the real UCI Adult file format.

:func:`load_csv`/:func:`save_csv` round-trip any :class:`~repro.data.table.Table`.
:func:`load_adult_file` parses the original ``adult.data``/``adult.test``
format (comma-separated, ``?`` for missing values) and applies the paper's
preprocessing: project onto the five attributes and drop rows with missing
values — so the real dataset can replace the synthetic one everywhere.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.data.adult import ADULT_SCHEMA
from repro.data.schema import Schema
from repro.data.table import Table
from repro.errors import SchemaError

__all__ = ["load_csv", "save_csv", "load_adult_file", "ADULT_RAW_COLUMNS"]

#: Column order of the raw UCI ``adult.data`` file (no header line).
ADULT_RAW_COLUMNS = (
    "age",
    "workclass",
    "fnlwgt",
    "education",
    "education_num",
    "marital_status",
    "occupation",
    "relationship",
    "race",
    "sex",
    "capital_gain",
    "capital_loss",
    "hours_per_week",
    "native_country",
    "income",
)

#: Attributes with integer values in the schemas this module produces.
_INT_ATTRIBUTES = frozenset({"age"})


def save_csv(table: Table, path: str | Path) -> None:
    """Write ``table`` to ``path`` as a headered CSV."""
    attributes = table.schema.attributes
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(attributes)
        for record in table:
            writer.writerow([record[a] for a in attributes])


def load_csv(path: str | Path, schema: Schema) -> Table:
    """Read a headered CSV produced by :func:`save_csv` (or compatible).

    Values of attributes in ``{"age"}`` are parsed as ``int``; everything else
    stays a string.

    Raises
    ------
    SchemaError
        If the header lacks a schema attribute.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: empty CSV") from None
        missing = [a for a in schema.attributes if a not in header]
        if missing:
            raise SchemaError(f"{path}: header missing attributes {missing}")
        index = {name: header.index(name) for name in schema.attributes}
        rows = []
        for raw in reader:
            record = {}
            for name, col in index.items():
                value: object = raw[col]
                if name in _INT_ATTRIBUTES:
                    value = int(value)
                record[name] = value
            rows.append(record)
    return Table(rows, schema)


def load_adult_file(path: str | Path) -> Table:
    """Parse a raw UCI ``adult.data`` file with the paper's preprocessing.

    Projects onto (age, marital_status, race, sex, occupation) and drops any
    row with a missing value (``?``) in those attributes, mirroring the
    paper's 45,222-tuple dataset.
    """
    keep = ADULT_SCHEMA.attributes
    rows = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        for raw in reader:
            if not raw or (len(raw) == 1 and not raw[0].strip()):
                continue
            if len(raw) != len(ADULT_RAW_COLUMNS):
                raise SchemaError(
                    f"{path}: expected {len(ADULT_RAW_COLUMNS)} columns, "
                    f"got {len(raw)}: {raw!r}"
                )
            record_all = {
                name: value.strip() for name, value in zip(ADULT_RAW_COLUMNS, raw)
            }
            record = {name: record_all[name] for name in keep}
            if any(value == "?" for value in record.values()):
                continue
            record["age"] = int(record["age"])
            rows.append(record)
    return Table(rows, ADULT_SCHEMA)
