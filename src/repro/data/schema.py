"""Schema declaration for published microdata tables.

The paper's model (Section 2) is a table with one *sensitive* attribute ``S``
(finite domain) and one or more *non-sensitive* (quasi-identifier) attributes.
:class:`Schema` captures exactly that and is shared by :class:`repro.data.table.Table`,
the bucketizer, and the generalization machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError

__all__ = ["Schema"]


@dataclass(frozen=True)
class Schema:
    """Column roles of a microdata table.

    Parameters
    ----------
    quasi_identifiers:
        Ordered non-sensitive attribute names (``Zip``, ``Age``, ... in the
        paper's Figure 1). Order matters: generalization-lattice nodes are
        level vectors aligned with this order.
    sensitive:
        Name of the single sensitive attribute (``Disease`` / ``Occupation``).
    identifier:
        Optional name of an explicit person-identifier column (``Name``). When
        absent, the row index within the table is used as the person id.

    Raises
    ------
    SchemaError
        If attribute names collide or no quasi-identifier is given.
    """

    quasi_identifiers: tuple[str, ...]
    sensitive: str
    identifier: str | None = field(default=None)

    def __post_init__(self) -> None:
        qi = tuple(self.quasi_identifiers)
        object.__setattr__(self, "quasi_identifiers", qi)
        if not qi:
            raise SchemaError("a schema needs at least one quasi-identifier")
        names = list(qi) + [self.sensitive]
        if self.identifier is not None:
            names.append(self.identifier)
        if len(set(names)) != len(names):
            raise SchemaError(f"attribute names must be distinct, got {names}")

    @property
    def attributes(self) -> tuple[str, ...]:
        """All attribute names, quasi-identifiers first, then the sensitive one."""
        base = self.quasi_identifiers + (self.sensitive,)
        if self.identifier is not None:
            return (self.identifier,) + base
        return base

    def validate_record(self, record: dict) -> None:
        """Raise :class:`SchemaError` unless ``record`` has every attribute."""
        missing = [a for a in self.attributes if a not in record]
        if missing:
            raise SchemaError(f"record {record!r} is missing attributes {missing}")

    def qi_tuple(self, record: dict) -> tuple:
        """Project ``record`` onto the quasi-identifiers, preserving order."""
        return tuple(record[a] for a in self.quasi_identifiers)
