"""The paper's generalization hierarchies for the Adult projection.

Section 4 of the paper: "Age can be generalized to six levels (unsuppressed,
generalized to intervals of size 5, 10, 20, 40, or completely suppressed),
Marital Status can be generalized to three levels, and Race and Gender can
each either be left as is or be completely suppressed." The resulting
full-domain generalization lattice has 6 x 3 x 2 x 2 = 72 nodes.
"""

from __future__ import annotations

from repro.data.adult import MARITAL_STATUSES
from repro.generalization.hierarchy import Hierarchy

__all__ = ["adult_hierarchies", "MARITAL_GROUPING"]

#: Level-1 grouping of marital status into Married / Was-married / Never-married.
MARITAL_GROUPING = {
    "Married-civ-spouse": "Married",
    "Married-AF-spouse": "Married",
    "Married-spouse-absent": "Married",
    "Divorced": "Was-married",
    "Separated": "Was-married",
    "Widowed": "Was-married",
    "Never-married": "Never-married",
}


def adult_hierarchies() -> dict[str, Hierarchy]:
    """Build the four quasi-identifier hierarchies used by the paper.

    Returns
    -------
    dict[str, Hierarchy]
        Keyed by attribute name, aligned with
        :data:`repro.data.adult.ADULT_SCHEMA`'s quasi-identifier order:
        ``age`` (6 levels), ``marital_status`` (3), ``race`` (2), ``sex`` (2).

    Examples
    --------
    >>> from repro.data.adult import ADULT_SCHEMA
    >>> hs = adult_hierarchies()
    >>> [hs[a].num_levels for a in ADULT_SCHEMA.quasi_identifiers]
    [6, 3, 2, 2]
    >>> hs["age"].generalize(27, 3)
    '[20-39]'
    >>> hs["marital_status"].generalize("Divorced", 1)
    'Was-married'
    """
    missing = set(MARITAL_STATUSES) - set(MARITAL_GROUPING)
    if missing:  # pragma: no cover - guards future domain edits
        raise AssertionError(f"marital grouping misses {sorted(missing)}")
    return {
        "age": Hierarchy.from_intervals("age", [5, 10, 20, 40], origin=0),
        "marital_status": Hierarchy.from_grouping(
            "marital_status", [MARITAL_GROUPING]
        ),
        "race": Hierarchy.identity_or_suppress("race"),
        "sex": Hierarchy.identity_or_suppress("sex"),
    }
