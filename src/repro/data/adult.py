"""Synthetic stand-in for the UCI Adult dataset projection used in the paper.

The paper's evaluation (Section 4) projects the Adult Database onto five
attributes — Age, Marital Status, Race, Gender, Occupation — keeps the 45,222
tuples without missing values, and treats Occupation (14 values) as the
sensitive attribute.

This environment has no network access, so :func:`generate_adult` synthesizes
a table with the same schema, the same attribute cardinalities, marginals
matching the published Adult statistics, and mild realistic correlations
(occupation depends on gender; marital status depends on age). The worst-case
disclosure algorithms consume only per-bucket sensitive-value histograms, so
this preserves every code path and the qualitative shapes of Figures 5 and 6.
The substitution is recorded in ``DESIGN.md`` (Section 4). If you have the real
``adult.data`` file, load it with :func:`repro.data.loader.load_adult_file`
and every experiment accepts it unchanged.
"""

from __future__ import annotations

try:  # numpy is the `fast` extra; only *generating* synthetic rows needs it
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    np = None

from repro.data.schema import Schema
from repro.data.table import Table

__all__ = [
    "ADULT_SCHEMA",
    "ADULT_SIZE",
    "OCCUPATIONS",
    "MARITAL_STATUSES",
    "RACES",
    "SEXES",
    "generate_adult",
]

#: Schema of the paper's Adult projection. Occupation is sensitive; the other
#: four attributes are quasi-identifiers (order fixes lattice-node layout).
ADULT_SCHEMA = Schema(
    quasi_identifiers=("age", "marital_status", "race", "sex"),
    sensitive="occupation",
)

#: Number of tuples after the paper removes records with missing values.
ADULT_SIZE = 45222

#: The fourteen occupation values of the Adult dataset (the sensitive domain).
OCCUPATIONS = (
    "Adm-clerical",
    "Armed-Forces",
    "Craft-repair",
    "Exec-managerial",
    "Farming-fishing",
    "Handlers-cleaners",
    "Machine-op-inspct",
    "Other-service",
    "Priv-house-serv",
    "Prof-specialty",
    "Protective-serv",
    "Sales",
    "Tech-support",
    "Transport-moving",
)

MARITAL_STATUSES = (
    "Divorced",
    "Married-AF-spouse",
    "Married-civ-spouse",
    "Married-spouse-absent",
    "Never-married",
    "Separated",
    "Widowed",
)

RACES = (
    "Amer-Indian-Eskimo",
    "Asian-Pac-Islander",
    "Black",
    "Other",
    "White",
)

SEXES = ("Female", "Male")

# ---------------------------------------------------------------------------
# Published Adult marginals (approximate, as fractions of the 45,222 rows).
# Sources: the standard UCI Adult summary statistics.
# ---------------------------------------------------------------------------

_SEX_PROBS = {"Male": 0.675, "Female": 0.325}

_RACE_PROBS = {
    "White": 0.8604,
    "Black": 0.0928,
    "Asian-Pac-Islander": 0.0291,
    "Amer-Indian-Eskimo": 0.0095,
    "Other": 0.0082,
}

# Occupation conditional on sex: men skew Craft-repair/Transport-moving,
# women skew Adm-clerical/Other-service; column sums are 1.
_OCCUPATION_GIVEN_SEX = {
    "Male": {
        "Adm-clerical": 0.072,
        "Armed-Forces": 0.0005,
        "Craft-repair": 0.190,
        "Exec-managerial": 0.141,
        "Farming-fishing": 0.046,
        "Handlers-cleaners": 0.060,
        "Machine-op-inspct": 0.072,
        "Other-service": 0.073,
        "Priv-house-serv": 0.0005,
        "Prof-specialty": 0.130,
        "Protective-serv": 0.029,
        "Sales": 0.120,
        "Tech-support": 0.028,
        "Transport-moving": 0.038,
    },
    "Female": {
        "Adm-clerical": 0.235,
        "Armed-Forces": 0.0002,
        "Craft-repair": 0.025,
        "Exec-managerial": 0.120,
        "Farming-fishing": 0.007,
        "Handlers-cleaners": 0.017,
        "Machine-op-inspct": 0.040,
        "Other-service": 0.183,
        "Priv-house-serv": 0.0158,
        "Prof-specialty": 0.150,
        "Protective-serv": 0.008,
        "Sales": 0.125,
        "Tech-support": 0.040,
        "Transport-moving": 0.034,
    },
}

# Occupation skew by age band, applied multiplicatively to the sex
# conditionals and renormalized. Mirrors the real Adult data: the youngest
# workers concentrate in service/sales/manual occupations (their age buckets
# are strongly skewed — the paper's Figure 5 starts near 0.3 disclosure at
# k = 0), while older workers skew managerial/professional/farming.
_OCCUPATION_AGE_MULTIPLIERS = (
    # 17-24
    {
        "Other-service": 2.9,
        "Handlers-cleaners": 2.2,
        "Sales": 1.5,
        "Machine-op-inspct": 1.1,
        "Adm-clerical": 1.1,
        "Exec-managerial": 0.25,
        "Prof-specialty": 0.35,
        "Craft-repair": 0.7,
        "Transport-moving": 0.6,
        "Protective-serv": 0.5,
        "Tech-support": 0.6,
        "Farming-fishing": 1.2,
        "Priv-house-serv": 1.5,
        "Armed-Forces": 1.5,
    },
    # 25-34
    {
        "Other-service": 1.0,
        "Exec-managerial": 0.95,
        "Prof-specialty": 1.05,
        "Craft-repair": 1.05,
    },
    # 35-49
    {
        "Exec-managerial": 1.2,
        "Prof-specialty": 1.15,
        "Other-service": 0.8,
        "Handlers-cleaners": 0.75,
        "Sales": 0.95,
    },
    # 50-64
    {
        "Exec-managerial": 1.25,
        "Prof-specialty": 1.05,
        "Farming-fishing": 1.5,
        "Other-service": 0.85,
        "Handlers-cleaners": 0.6,
        "Sales": 0.95,
        "Priv-house-serv": 1.5,
    },
    # 65-90
    {
        "Exec-managerial": 1.3,
        "Prof-specialty": 1.1,
        "Farming-fishing": 3.0,
        "Sales": 1.3,
        "Other-service": 1.3,
        "Priv-house-serv": 3.0,
        "Handlers-cleaners": 0.5,
        "Machine-op-inspct": 0.6,
        "Craft-repair": 0.6,
        "Adm-clerical": 0.8,
        "Tech-support": 0.4,
        "Protective-serv": 0.6,
    },
)

# Marital status conditional on coarse age band; rows sum to 1. Bands are
# [17,25), [25,35), [35,50), [50,65), [65,91).
_AGE_BANDS = (17, 25, 35, 50, 65, 91)

_MARITAL_GIVEN_AGE_BAND = (
    # 17-24: overwhelmingly never married
    {
        "Never-married": 0.88,
        "Married-civ-spouse": 0.09,
        "Divorced": 0.012,
        "Separated": 0.010,
        "Widowed": 0.001,
        "Married-spouse-absent": 0.006,
        "Married-AF-spouse": 0.001,
    },
    # 25-34
    {
        "Never-married": 0.42,
        "Married-civ-spouse": 0.455,
        "Divorced": 0.075,
        "Separated": 0.030,
        "Widowed": 0.003,
        "Married-spouse-absent": 0.015,
        "Married-AF-spouse": 0.002,
    },
    # 35-49
    {
        "Never-married": 0.17,
        "Married-civ-spouse": 0.60,
        "Divorced": 0.155,
        "Separated": 0.040,
        "Widowed": 0.015,
        "Married-spouse-absent": 0.019,
        "Married-AF-spouse": 0.001,
    },
    # 50-64
    {
        "Never-married": 0.07,
        "Married-civ-spouse": 0.645,
        "Divorced": 0.165,
        "Separated": 0.030,
        "Widowed": 0.075,
        "Married-spouse-absent": 0.015,
        "Married-AF-spouse": 0.0,
    },
    # 65-90
    {
        "Never-married": 0.045,
        "Married-civ-spouse": 0.545,
        "Divorced": 0.095,
        "Separated": 0.015,
        "Widowed": 0.29,
        "Married-spouse-absent": 0.01,
        "Married-AF-spouse": 0.0,
    },
)


def _normalized(probs: dict[str, float], domain: tuple[str, ...]) -> np.ndarray:
    """Return ``probs`` as an array aligned with ``domain`` and summing to 1."""
    vector = np.array([probs.get(value, 0.0) for value in domain], dtype=float)
    total = vector.sum()
    if total <= 0:
        raise ValueError("probability table sums to zero")
    return vector / total


def _sample_ages(rng: np.random.Generator, n: int) -> np.ndarray:
    """Right-skewed ages in [17, 90], mean ~38.5, like the Adult dataset."""
    body = rng.normal(loc=37.0, scale=12.5, size=n)
    # A small older tail: the Adult data has more 60+ records than a normal fit.
    tail_mask = rng.random(n) < 0.06
    tail = rng.uniform(60.0, 90.0, size=n)
    ages = np.where(tail_mask, tail, body)
    return np.clip(np.rint(ages), 17, 90).astype(int)


def generate_adult(n: int = ADULT_SIZE, *, seed: int = 20070419) -> Table:
    """Generate the synthetic Adult projection (deterministic for a seed).

    Parameters
    ----------
    n:
        Number of rows (default: the paper's 45,222).
    seed:
        PRNG seed; the default reproduces the tables reported in
        ``EXPERIMENTS.md`` exactly.

    Returns
    -------
    Table
        Rows with attributes ``age`` (int 17-90), ``marital_status``,
        ``race``, ``sex`` (quasi-identifiers) and ``occupation`` (sensitive,
        14 values), under :data:`ADULT_SCHEMA`.

    Examples
    --------
    >>> table = generate_adult(1000)
    >>> len(table), len(set(table.sensitive_values())) <= 14
    (1000, True)
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if np is None:
        raise ModuleNotFoundError(
            "generate_adult requires numpy for its seeded sampling "
            "(pip install 'repro[fast]'); real data loaded via "
            "repro.data.loader works without it"
        )
    rng = np.random.default_rng(seed)

    ages = _sample_ages(rng, n)

    sex_probs = _normalized(_SEX_PROBS, SEXES)
    sexes = rng.choice(np.array(SEXES, dtype=object), size=n, p=sex_probs)

    race_probs = _normalized(_RACE_PROBS, RACES)
    races = rng.choice(np.array(RACES, dtype=object), size=n, p=race_probs)

    # Marital status: sample per age band so youth are mostly never-married.
    marital = np.empty(n, dtype=object)
    band_index = np.digitize(ages, _AGE_BANDS[1:-1], right=False)
    for band, conditional in enumerate(_MARITAL_GIVEN_AGE_BAND):
        mask = band_index == band
        count = int(mask.sum())
        if count == 0:
            continue
        probs = _normalized(conditional, MARITAL_STATUSES)
        marital[mask] = rng.choice(
            np.array(MARITAL_STATUSES, dtype=object), size=count, p=probs
        )

    # Occupation: sample conditionally on (sex, age band).
    occupation = np.empty(n, dtype=object)
    for sex in SEXES:
        base = _normalized(_OCCUPATION_GIVEN_SEX[sex], OCCUPATIONS)
        for band, multipliers in enumerate(_OCCUPATION_AGE_MULTIPLIERS):
            mask = (sexes == sex) & (band_index == band)
            count = int(mask.sum())
            if count == 0:
                continue
            scale = np.array(
                [multipliers.get(value, 1.0) for value in OCCUPATIONS]
            )
            probs = base * scale
            probs /= probs.sum()
            occupation[mask] = rng.choice(
                np.array(OCCUPATIONS, dtype=object), size=count, p=probs
            )

    columns = {
        "age": [int(a) for a in ages],
        "marital_status": list(marital),
        "race": list(races),
        "sex": list(sexes),
        "occupation": list(occupation),
    }
    return Table.from_columns(columns, ADULT_SCHEMA)
