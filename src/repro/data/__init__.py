"""Data substrate: schemas, tables, the synthetic Adult dataset, and loaders.

This subpackage provides everything the paper's evaluation consumes as input:

- :class:`repro.data.schema.Schema` / :class:`repro.data.table.Table` — the
  microdata model (one sensitive attribute, several quasi-identifiers).
- :func:`repro.data.adult.generate_adult` — a deterministic synthetic stand-in
  for the UCI Adult dataset projection used in the paper (Age, Marital Status,
  Race, Gender, Occupation; 45,222 tuples).
- :func:`repro.data.hierarchies.adult_hierarchies` — the paper's
  generalization hierarchies (6 x 3 x 2 x 2 lattice).
- :mod:`repro.data.loader` — CSV round-trip so the real Adult file can be
  dropped in.
"""

from repro.data.schema import Schema
from repro.data.table import Table
from repro.data.adult import ADULT_SCHEMA, OCCUPATIONS, generate_adult
from repro.data.hierarchies import adult_hierarchies
from repro.data.loader import load_csv, save_csv

__all__ = [
    "Schema",
    "Table",
    "ADULT_SCHEMA",
    "OCCUPATIONS",
    "generate_adult",
    "adult_hierarchies",
    "load_csv",
    "save_csv",
]
