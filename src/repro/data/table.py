"""The microdata table: the publisher's private input.

A :class:`Table` is an immutable list of records plus a :class:`~repro.data.schema.Schema`.
Every record belongs to a unique person; the person id is either the value of
the schema's ``identifier`` column or the row index. Person ids are what the
background-knowledge language (:mod:`repro.knowledge`) refers to.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterable, Iterator, Mapping, Sequence
from typing import Any

from repro.data.schema import Schema
from repro.errors import EmptyTableError, SchemaError

__all__ = ["Table"]


class Table:
    """An immutable microdata table (Section 2 of the paper).

    Parameters
    ----------
    rows:
        Records as mappings from attribute name to value. Copied defensively.
    schema:
        Column roles; every row must provide every schema attribute.

    Examples
    --------
    >>> schema = Schema(quasi_identifiers=("Zip", "Age"), sensitive="Disease")
    >>> t = Table([{"Zip": "14850", "Age": 23, "Disease": "Flu"}], schema)
    >>> len(t)
    1
    >>> t.sensitive_values()
    ('Flu',)
    """

    __slots__ = ("_rows", "_schema", "_person_ids")

    def __init__(self, rows: Iterable[Mapping[str, Any]], schema: Schema) -> None:
        self._schema = schema
        materialized = [dict(r) for r in rows]
        for record in materialized:
            schema.validate_record(record)
        self._rows: tuple[dict, ...] = tuple(materialized)
        if schema.identifier is not None:
            ids = tuple(r[schema.identifier] for r in self._rows)
            if len(set(ids)) != len(ids):
                raise SchemaError("identifier column contains duplicate person ids")
        else:
            ids = tuple(range(len(self._rows)))
        self._person_ids: tuple[Any, ...] = ids

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict]:
        return iter(self._rows)

    def __getitem__(self, index: int) -> dict:
        return self._rows[index]

    def __repr__(self) -> str:
        return f"Table({len(self)} rows, schema={self._schema!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self._schema == other._schema and self._rows == other._rows

    def __hash__(self) -> int:  # pragma: no cover - rarely hashed, but immutable
        return hash((self._schema, tuple(tuple(sorted(r.items())) for r in self._rows)))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The table's :class:`~repro.data.schema.Schema`."""
        return self._schema

    @property
    def rows(self) -> tuple[dict, ...]:
        """All records (shared tuple; records must not be mutated)."""
        return self._rows

    @property
    def person_ids(self) -> tuple[Any, ...]:
        """One id per row: the identifier column if declared, else row index."""
        return self._person_ids

    def record_of(self, person_id: Any) -> dict:
        """Return the record of ``person_id``.

        Raises
        ------
        KeyError
            If no row belongs to ``person_id``.
        """
        try:
            index = self._person_ids.index(person_id)
        except ValueError:
            raise KeyError(f"no record for person {person_id!r}") from None
        return self._rows[index]

    def sensitive_values(self) -> tuple[Any, ...]:
        """The sensitive column, in row order."""
        s = self._schema.sensitive
        return tuple(r[s] for r in self._rows)

    def sensitive_domain(self) -> tuple[Any, ...]:
        """Distinct sensitive values present, in sorted order."""
        return tuple(sorted(set(self.sensitive_values()), key=repr))

    def sensitive_histogram(self) -> Counter:
        """Multiplicity of each sensitive value over the whole table."""
        return Counter(self.sensitive_values())

    def column(self, attribute: str) -> tuple[Any, ...]:
        """One attribute's values in row order."""
        if attribute not in self._schema.attributes:
            raise SchemaError(f"unknown attribute {attribute!r}")
        return tuple(r[attribute] for r in self._rows)

    def distinct(self, attribute: str) -> tuple[Any, ...]:
        """Distinct values of ``attribute``, sorted by ``repr`` for stability."""
        return tuple(sorted(set(self.column(attribute)), key=repr))

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------
    def map_qi(self, transform: Callable[[str, Any], Any]) -> "Table":
        """Return a new table with ``transform(attribute, value)`` applied to
        every quasi-identifier cell (the sensitive column is untouched).

        This is the primitive that full-domain generalization builds on.
        """
        qi = self._schema.quasi_identifiers
        new_rows = []
        for record in self._rows:
            clone = dict(record)
            for attribute in qi:
                clone[attribute] = transform(attribute, record[attribute])
            new_rows.append(clone)
        return Table(new_rows, self._schema)

    def select(self, predicate: Callable[[dict], bool]) -> "Table":
        """Return the sub-table of rows satisfying ``predicate``."""
        return Table([r for r in self._rows if predicate(r)], self._schema)

    def sample(self, n: int, *, seed: int = 0) -> "Table":
        """Return a deterministic uniform sample of ``n`` rows (without
        replacement). Useful for scaled-down experiments.
        """
        import random

        if n > len(self):
            raise EmptyTableError(f"cannot sample {n} rows from {len(self)}")
        rng = random.Random(seed)
        chosen = sorted(rng.sample(range(len(self)), n))
        return Table([self._rows[i] for i in chosen], self._schema)

    def group_by_qi(self) -> dict[tuple, list[Any]]:
        """Group person ids by their (current) quasi-identifier tuple.

        Returns a mapping from QI tuple to the list of person ids sharing it,
        in row order. This is the equivalence-class structure that both
        k-anonymity and bucketization operate on.
        """
        groups: dict[tuple, list[Any]] = {}
        for pid, record in zip(self._person_ids, self._rows):
            groups.setdefault(self._schema.qi_tuple(record), []).append(pid)
        return groups

    def require_nonempty(self) -> None:
        """Raise :class:`EmptyTableError` if the table has no rows."""
        if not self._rows:
            raise EmptyTableError("operation requires a non-empty table")

    @classmethod
    def from_columns(
        cls, columns: Mapping[str, Sequence[Any]], schema: Schema
    ) -> "Table":
        """Build a table from parallel columns (all the same length)."""
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"columns have unequal lengths {sorted(lengths)}")
        n = lengths.pop() if lengths else 0
        names = list(columns)
        rows = [{name: columns[name][i] for name in names} for i in range(n)]
        return cls(rows, schema)
