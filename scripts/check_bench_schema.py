#!/usr/bin/env python
"""Validate BENCH_*.json benchmark artifacts against their schema.

CI's bench-smoke job runs the JSON-emitting benchmarks at tiny sizes and
then this checker, so schema drift (a renamed or dropped key, a version
bump without a matching update here) fails the build instead of silently
breaking the cross-PR perf trajectory.

Usage: python scripts/check_bench_schema.py BENCH_engine.json BENCH_parallel.json
"""

from __future__ import annotations

import json
import sys

SCHEMA_VERSION = 1

#: Required keys per benchmark name (the shared envelope plus specifics).
ENVELOPE = {"benchmark", "schema_version", "python", "tiny"}
REQUIRED = {
    "engine": ENVELOPE
    | {
        "wall_time_s",
        "rows",
        "nodes",
        "models",
        "ks",
        "epochs",
        "cache_hit_rate",
        "cache_entries",
        "evictions",
        "stats",
    },
    "parallel": ENVELOPE
    | {
        "serial_s",
        "parallel_s",
        "speedup_vs_serial",
        "workers",
        "cores_available",
        "nodes",
        "ks",
        "identical_results",
        "parallel_tasks",
        "cache_hit_rate",
    },
}


def check(path: str) -> list[str]:
    errors: list[str] = []
    try:
        with open(path) as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    name = record.get("benchmark")
    required = REQUIRED.get(name)
    if required is None:
        return [f"{path}: unknown benchmark name {name!r}"]
    if record.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"{path}: schema_version {record.get('schema_version')!r} "
            f"!= {SCHEMA_VERSION}"
        )
    missing = sorted(required - set(record))
    if missing:
        errors.append(f"{path}: missing keys {missing}")
    if name == "parallel" and record.get("identical_results") is not True:
        errors.append(f"{path}: parallel results did not match serial")
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = [error for path in argv for error in check(path)]
    for error in errors:
        print(f"schema error: {error}", file=sys.stderr)
    if not errors:
        print(f"ok: {len(argv)} benchmark artifact(s) match schema v{SCHEMA_VERSION}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
