#!/usr/bin/env python
"""Validate BENCH_*.json benchmark artifacts against their schema.

CI's bench-smoke job runs the JSON-emitting benchmarks at tiny sizes and
then this checker, so schema drift (a renamed or dropped key, a version
bump without a matching update here) fails the build instead of silently
breaking the cross-PR perf trajectory.

Usage: python scripts/check_bench_schema.py BENCH_engine.json \
    BENCH_parallel.json BENCH_backend.json BENCH_service.json
"""

from __future__ import annotations

import json
import sys

SCHEMA_VERSION = 1

#: Required keys per benchmark name (the shared envelope plus specifics).
ENVELOPE = {"benchmark", "schema_version", "python", "tiny"}
REQUIRED = {
    "engine": ENVELOPE
    | {
        "wall_time_s",
        "rows",
        "nodes",
        "models",
        "ks",
        "epochs",
        "cache_hit_rate",
        "cache_entries",
        "evictions",
        "stats",
    },
    "parallel": ENVELOPE
    | {
        "serial_s",
        "parallel_s",
        "speedup_vs_serial",
        "workers",
        "cores_available",
        "nodes",
        "ks",
        "identical_results",
        "parallel_tasks",
        "cache_hit_rate",
    },
    "backend": ENVELOPE
    | {
        "workers",
        "cores_available",
        "batches",
        "tasks_per_batch",
        "ks",
        "backends",
        "identical_results",
        "ship_once_per_worker",
        "steady_speedup_vs_pool",
    },
    "service": ENVELOPE
    | {
        "backend",
        "workers",
        "k",
        "questions",
        "warm_repeats",
        "cold_ms",
        "warm_ms",
        "requests_per_s",
        "sequential_s",
        "batch_s",
        "batch_speedup",
        "concurrent_clients",
        "concurrent_s",
        "coalesced_batches",
        "coalesced_singles",
        "max_coalesced",
        "identical_results",
    },
}

#: Per-backend keys required inside the "backend" record's ``backends`` map.
BACKEND_NAMES = {"serial", "pool", "persistent"}
BACKEND_KEYS = {"cold_s", "steady_s", "per_batch_s"}
PERSISTENT_KEYS = BACKEND_KEYS | {
    "ship_sizes",
    "unique_signatures",
    "max_workers_used",
}


def check(path: str) -> list[str]:
    errors: list[str] = []
    try:
        with open(path) as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    name = record.get("benchmark")
    required = REQUIRED.get(name)
    if required is None:
        return [f"{path}: unknown benchmark name {name!r}"]
    if record.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"{path}: schema_version {record.get('schema_version')!r} "
            f"!= {SCHEMA_VERSION}"
        )
    missing = sorted(required - set(record))
    if missing:
        errors.append(f"{path}: missing keys {missing}")
    if name == "parallel" and record.get("identical_results") is not True:
        errors.append(f"{path}: parallel results did not match serial")
    if name == "backend":
        errors.extend(_check_backend(path, record))
    if name == "service":
        errors.extend(_check_service(path, record))
    return errors


def _check_service(path: str, record: dict) -> list[str]:
    """The service record's invariants: served values bit-identical to the
    direct engine, and concurrent singles actually coalesced."""
    errors: list[str] = []
    if record.get("identical_results") is not True:
        errors.append(f"{path}: service answers diverged from the engine")
    batches = record.get("coalesced_batches")
    if not isinstance(batches, int) or batches < 1:
        errors.append(
            f"{path}: no coalesced batches recorded "
            f"(coalesced_batches={batches!r})"
        )
    return errors


def _check_backend(path: str, record: dict) -> list[str]:
    """The backend record's invariants: every backend reported with its
    latency keys, the persistent delta-protocol evidence present, and the
    two headline booleans actually true."""
    errors: list[str] = []
    backends = record.get("backends")
    if not isinstance(backends, dict):
        return [f"{path}: 'backends' must be an object"]
    missing_backends = sorted(BACKEND_NAMES - set(backends))
    if missing_backends:
        errors.append(f"{path}: missing backends {missing_backends}")
    for backend_name, entry in backends.items():
        if not isinstance(entry, dict):
            errors.append(
                f"{path}: backends.{backend_name} must be an object"
            )
            continue
        required = (
            PERSISTENT_KEYS if backend_name == "persistent" else BACKEND_KEYS
        )
        missing = sorted(required - set(entry))
        if missing:
            errors.append(
                f"{path}: backends.{backend_name} missing keys {missing}"
            )
    if record.get("identical_results") is not True:
        errors.append(f"{path}: backend results did not match serial")
    if record.get("ship_once_per_worker") is not True:
        errors.append(
            f"{path}: delta protocol shipped a signature more than once "
            f"per worker"
        )
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = [error for path in argv for error in check(path)]
    for error in errors:
        print(f"schema error: {error}", file=sys.stderr)
    if not errors:
        print(f"ok: {len(argv)} benchmark artifact(s) match schema v{SCHEMA_VERSION}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
