#!/usr/bin/env python
"""Validate BENCH_*.json benchmark artifacts — schema and cross-run drift.

CI's bench-smoke job runs the JSON-emitting benchmarks at tiny sizes and
then this checker, so schema drift (a renamed or dropped key, a version
bump without a matching update here) fails the build instead of silently
breaking the cross-PR perf trajectory.

Two modes:

``check`` (the default)
    Validate each artifact against its required key set and invariants::

        python scripts/check_bench_schema.py BENCH_engine.json \\
            BENCH_parallel.json BENCH_backend.json BENCH_service.json

``--compare BASELINE.json FRESH.json``
    The CI regression gate: validate FRESH as above, then require that
    every key (recursively, through nested sections) present in the
    committed BASELINE is still present in FRESH — a dropped section is a
    build failure, because it silently truncates the perf trajectory.
    Timing-valued fields (``*_s``, ``*_ms``, ``*requests_per_s``,
    ``*speedup``) are compared **tolerantly** (an order-of-magnitude
    band, machines differ) and skipped entirely when either record was
    produced under ``BENCH_TINY`` — tiny workloads measure nothing.
"""

from __future__ import annotations

import json
import sys

SCHEMA_VERSION = 1

#: Ratio beyond which a (non-tiny) timing comparison fails. Deliberately
#: generous: this gate exists to catch pathological regressions and unit
#: mixups (ms recorded as s), not 20% noise between machines.
TIMING_TOLERANCE = 10.0

#: Required keys per benchmark name (the shared envelope plus specifics).
ENVELOPE = {"benchmark", "schema_version", "python", "tiny"}
REQUIRED = {
    "engine": ENVELOPE
    | {
        "wall_time_s",
        "rows",
        "nodes",
        "models",
        "ks",
        "epochs",
        "cache_hit_rate",
        "cache_entries",
        "evictions",
        "stats",
        "kernel",
    },
    "parallel": ENVELOPE
    | {
        "serial_s",
        "parallel_s",
        "speedup_vs_serial",
        "workers",
        "cores_available",
        "nodes",
        "ks",
        "identical_results",
        "parallel_tasks",
        "cache_hit_rate",
    },
    "backend": ENVELOPE
    | {
        "workers",
        "cores_available",
        "batches",
        "tasks_per_batch",
        "ks",
        "backends",
        "identical_results",
        "ship_once_per_worker",
        "steady_speedup_vs_pool",
    },
    "service": ENVELOPE
    | {
        "backend",
        "workers",
        "k",
        "questions",
        "warm_repeats",
        "cold_ms",
        "warm_ms",
        "requests_per_s",
        "sequential_s",
        "batch_s",
        "batch_speedup",
        "concurrent_clients",
        "concurrent_s",
        "coalesced_batches",
        "coalesced_singles",
        "max_coalesced",
        "identical_results",
        "latency",
        "router_overhead",
        "keepalive",
        "sharded",
        "multi_tenant",
    },
    "publish": ENVELOPE | {"k", "c", "float", "exact"},
}

#: Keys required inside each of the publish record's per-mode sections.
PUBLISH_MODE_KEYS = {
    "versions",
    "buckets_final",
    "distinct_multisets_final",
    "accepted_versions",
    "identical_results",
    "full_evaluated_multisets",
    "incremental_evaluated_multisets",
    "reused_multisets",
    "evaluated_ratio",
    "full_wall_ms",
    "incremental_wall_ms",
    "speedup",
}

#: Per-backend keys required inside the "backend" record's ``backends`` map.
BACKEND_NAMES = {"serial", "pool", "persistent"}
BACKEND_KEYS = {"cold_s", "steady_s", "per_batch_s"}
PERSISTENT_KEYS = BACKEND_KEYS | {
    "ship_sizes",
    "unique_signatures",
    "max_workers_used",
}

#: Keys required inside the engine record's ``kernel`` section, and the
#: speedup floor the committed (non-tiny) baseline must demonstrate.
KERNEL_KEYS = {
    "kernels",
    "numpy_available",
    "distinct_signatures",
    "nodes",
    "max_m",
    "max_k",
    "scalar_minimize1_s",
    "numpy_minimize1_s",
    "minimize1_speedup",
    "scalar_min_ratio_s",
    "numpy_min_ratio_s",
    "min_ratio_speedup",
    "identical_results",
}
KERNEL_SPEEDUP_FLOOR = 5.0

#: Keys required inside the service record's nested sections.
KEEPALIVE_KEYS = {
    "warm_repeats",
    "requests_per_s",
    "per_connection_requests_per_s",
    "speedup",
}
LATENCY_KEYS = {"p50_ms", "p95_ms", "p99_ms"}
ROUTER_OVERHEAD_KEYS = {
    "iterations",
    "reparse_us",
    "keyed_us",
    "memo_us",
    "keyed_speedup",
    "memo_speedup",
}
SHARDED_KEYS = (
    LATENCY_KEYS
    | {
        "shards",
        "shard_mode",
        "clients",
        "requests",
        "requests_per_s",
        "single_requests_per_s",
        "requests_per_s_ratio",
        "split_batches",
        "restarts",
        "route_memo_hits",
        "reparse_avoided",
        "fast_hits",
        "coalesced_batches",
        "identical_results",
    }
)
MULTI_TENANT_KEYS = {
    "tenants",
    "questions",
    "requests",
    "requests_per_s",
    "per_tenant_requests",
    "per_tenant_cache_entries",
    "cache_files",
    "cache_isolated",
    "identical_results",
}


def _load(path: str):
    with open(path) as handle:
        return json.load(handle)


def check(path: str) -> list[str]:
    errors: list[str] = []
    try:
        record = _load(path)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]
    name = record.get("benchmark")
    required = REQUIRED.get(name)
    if required is None:
        return [f"{path}: unknown benchmark name {name!r}"]
    if record.get("schema_version") != SCHEMA_VERSION:
        errors.append(
            f"{path}: schema_version {record.get('schema_version')!r} "
            f"!= {SCHEMA_VERSION}"
        )
    missing = sorted(required - set(record))
    if missing:
        errors.append(f"{path}: missing keys {missing}")
    if name == "parallel" and record.get("identical_results") is not True:
        errors.append(f"{path}: parallel results did not match serial")
    if name == "engine":
        errors.extend(_check_engine(path, record))
    if name == "backend":
        errors.extend(_check_backend(path, record))
    if name == "service":
        errors.extend(_check_service(path, record))
    if name == "publish":
        errors.extend(_check_publish(path, record))
    return errors


def _check_publish(path: str, record: dict) -> list[str]:
    """The publish record's invariants, per arithmetic mode: incremental
    decisions bit-identical to the full from-scratch re-check (and to the
    whole-table engine answer), strictly fewer multisets evaluated than
    full, and nonzero ledger reuse."""
    errors: list[str] = []
    for mode in ("float", "exact"):
        section = record.get(mode)
        if not isinstance(section, dict):
            errors.append(f"{path}: {mode!r} must be an object")
            continue
        missing = sorted(PUBLISH_MODE_KEYS - set(section))
        if missing:
            errors.append(f"{path}: {mode} missing keys {missing}")
        if section.get("identical_results") is not True:
            errors.append(
                f"{path}: {mode} incremental republication diverged from "
                f"the full re-check"
            )
        evaluated = section.get("incremental_evaluated_multisets")
        full_evaluated = section.get("full_evaluated_multisets")
        if (
            isinstance(evaluated, int)
            and isinstance(full_evaluated, int)
            and evaluated >= full_evaluated
        ):
            errors.append(
                f"{path}: {mode} incremental evaluated {evaluated} "
                f"multisets, not strictly fewer than full's "
                f"{full_evaluated}"
            )
        reused = section.get("reused_multisets")
        if isinstance(reused, int) and reused <= 0:
            errors.append(f"{path}: {mode} recorded no ledger reuse")
    return errors


def _check_engine(path: str, record: dict) -> list[str]:
    """The engine record's ``kernel`` section invariants: all keys present,
    and — whenever the numpy kernel actually ran — bit-identical results.
    The >= 5x MINIMIZE1 speedup floor is only meaningful at bench scale, so
    it is enforced for non-tiny records (the committed baseline)."""
    errors: list[str] = []
    section = record.get("kernel")
    if not isinstance(section, dict):
        return [f"{path}: 'kernel' must be an object"]
    missing = sorted(KERNEL_KEYS - set(section))
    if missing:
        errors.append(f"{path}: kernel missing keys {missing}")
    if not section.get("numpy_available"):
        return errors  # scalar-only environment: nothing to compare
    if section.get("identical_results") is not True:
        errors.append(
            f"{path}: numpy kernel results diverged from the scalar kernel"
        )
    speedup = section.get("minimize1_speedup")
    if not record.get("tiny") and (
        not isinstance(speedup, (int, float))
        or speedup < KERNEL_SPEEDUP_FLOOR
    ):
        errors.append(
            f"{path}: kernel minimize1_speedup {speedup!r} below the "
            f"x{KERNEL_SPEEDUP_FLOOR:g} floor"
        )
    return errors


def _check_service(path: str, record: dict) -> list[str]:
    """The service record's invariants: served values bit-identical to the
    direct engine (single, batch, keep-alive and sharded topologies),
    concurrent singles actually coalesced, the latency / router-overhead /
    keep-alive / sharded / multi-tenant sections present and complete,
    tenants provably cache-isolated, and — at bench scale (non-tiny) —
    the sharded topology at least matching the single service's req/s
    (the PR-7 routing-hot-path floor)."""
    errors: list[str] = []
    if record.get("identical_results") is not True:
        errors.append(f"{path}: service answers diverged from the engine")
    batches = record.get("coalesced_batches")
    if not isinstance(batches, int) or batches < 1:
        errors.append(
            f"{path}: no coalesced batches recorded "
            f"(coalesced_batches={batches!r})"
        )
    for section, required in (
        ("latency", LATENCY_KEYS),
        ("router_overhead", ROUTER_OVERHEAD_KEYS),
        ("keepalive", KEEPALIVE_KEYS),
        ("sharded", SHARDED_KEYS),
        ("multi_tenant", MULTI_TENANT_KEYS),
    ):
        entry = record.get(section)
        if not isinstance(entry, dict):
            errors.append(f"{path}: {section!r} must be an object")
            continue
        missing = sorted(required - set(entry))
        if missing:
            errors.append(f"{path}: {section} missing keys {missing}")
    sharded = record.get("sharded")
    if isinstance(sharded, dict) and sharded.get("identical_results") is not True:
        errors.append(
            f"{path}: sharded deployment diverged from the single engine"
        )
    multi_tenant = record.get("multi_tenant")
    if isinstance(multi_tenant, dict):
        if multi_tenant.get("identical_results") is not True:
            errors.append(
                f"{path}: multi-tenant answers diverged from the per-tenant "
                f"direct engines"
            )
        if multi_tenant.get("cache_isolated") is not True:
            errors.append(
                f"{path}: tenants shared cache state "
                f"(multi_tenant.cache_isolated is not true)"
            )
    if isinstance(sharded, dict) and not record.get("tiny"):
        sharded_rps = sharded.get("requests_per_s")
        single_rps = sharded.get("single_requests_per_s")
        if (
            isinstance(sharded_rps, (int, float))
            and isinstance(single_rps, (int, float))
            and sharded_rps < single_rps
        ):
            errors.append(
                f"{path}: sharded throughput {sharded_rps} req/s below the "
                f"single-service floor of {single_rps} req/s"
            )
    return errors


def _check_backend(path: str, record: dict) -> list[str]:
    """The backend record's invariants: every backend reported with its
    latency keys, the persistent delta-protocol evidence present, and the
    two headline booleans actually true."""
    errors: list[str] = []
    backends = record.get("backends")
    if not isinstance(backends, dict):
        return [f"{path}: 'backends' must be an object"]
    missing_backends = sorted(BACKEND_NAMES - set(backends))
    if missing_backends:
        errors.append(f"{path}: missing backends {missing_backends}")
    for backend_name, entry in backends.items():
        if not isinstance(entry, dict):
            errors.append(
                f"{path}: backends.{backend_name} must be an object"
            )
            continue
        required = (
            PERSISTENT_KEYS if backend_name == "persistent" else BACKEND_KEYS
        )
        missing = sorted(required - set(entry))
        if missing:
            errors.append(
                f"{path}: backends.{backend_name} missing keys {missing}"
            )
    if record.get("identical_results") is not True:
        errors.append(f"{path}: backend results did not match serial")
    if record.get("ship_once_per_worker") is not True:
        errors.append(
            f"{path}: delta protocol shipped a signature more than once "
            f"per worker"
        )
    return errors


# ---------------------------------------------------------------------------
# --compare: the regression gate between a committed baseline and a fresh run
# ---------------------------------------------------------------------------
def _is_timing_key(key: str) -> bool:
    return (
        key.endswith("_s")
        or key.endswith("_ms")
        or key.endswith("requests_per_s")
        or key.endswith("speedup")
    )


def _missing_keys(baseline, fresh, prefix: str = "") -> list[str]:
    """Every key path present in ``baseline`` but absent from ``fresh``."""
    missing: list[str] = []
    for key, value in baseline.items():
        path = f"{prefix}{key}"
        if key not in fresh:
            missing.append(path)
        elif isinstance(value, dict) and isinstance(fresh[key], dict):
            missing.extend(_missing_keys(value, fresh[key], f"{path}."))
    return missing


def _timing_drift(baseline, fresh, prefix: str = "") -> list[str]:
    """Tolerant timing comparison over shared numeric timing fields."""
    drifted: list[str] = []
    for key, base_value in baseline.items():
        path = f"{prefix}{key}"
        fresh_value = fresh.get(key)
        if isinstance(base_value, dict) and isinstance(fresh_value, dict):
            drifted.extend(_timing_drift(base_value, fresh_value, f"{path}."))
            continue
        if not _is_timing_key(key):
            continue
        if not isinstance(base_value, (int, float)) or not isinstance(
            fresh_value, (int, float)
        ):
            continue
        if base_value <= 0 or fresh_value <= 0:
            continue  # degenerate measurements carry no signal
        ratio = fresh_value / base_value
        if ratio > TIMING_TOLERANCE or ratio < 1.0 / TIMING_TOLERANCE:
            drifted.append(
                f"{path}: {fresh_value} vs baseline {base_value} "
                f"(x{ratio:.2f}, tolerance x{TIMING_TOLERANCE:g})"
            )
    return drifted


def compare(baseline_path: str, fresh_path: str) -> list[str]:
    """The ``--compare`` mode: schema-check FRESH, then diff BASELINE->FRESH."""
    errors = check(fresh_path)
    try:
        baseline = _load(baseline_path)
    except (OSError, json.JSONDecodeError) as exc:
        return errors + [f"{baseline_path}: unreadable baseline ({exc})"]
    try:
        fresh = _load(fresh_path)
    except (OSError, json.JSONDecodeError):
        return errors  # already reported by check()
    if baseline.get("benchmark") != fresh.get("benchmark"):
        errors.append(
            f"{fresh_path}: benchmark {fresh.get('benchmark')!r} does not "
            f"match baseline {baseline.get('benchmark')!r}"
        )
        return errors
    if baseline.get("schema_version") != fresh.get("schema_version"):
        errors.append(
            f"{fresh_path}: schema_version {fresh.get('schema_version')!r} "
            f"!= baseline {baseline.get('schema_version')!r}"
        )
    missing = _missing_keys(baseline, fresh)
    if missing:
        errors.append(
            f"{fresh_path}: keys present in baseline {baseline_path} but "
            f"missing here: {missing}"
        )
    if baseline.get("tiny") or fresh.get("tiny"):
        return errors  # tiny workloads measure nothing; skip timings
    errors.extend(
        f"{fresh_path}: timing drift at {entry}"
        for entry in _timing_drift(baseline, fresh)
    )
    return errors


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    if argv[0] == "--compare":
        if len(argv) != 3:
            print(
                "usage: check_bench_schema.py --compare BASELINE.json "
                "FRESH.json",
                file=sys.stderr,
            )
            return 2
        errors = compare(argv[1], argv[2])
        for error in errors:
            print(f"bench-compare error: {error}", file=sys.stderr)
        if not errors:
            print(f"ok: {argv[2]} matches baseline {argv[1]}")
        return 1 if errors else 0
    errors = [error for path in argv for error in check(path)]
    for error in errors:
        print(f"schema error: {error}", file=sys.stderr)
    if not errors:
        print(f"ok: {len(argv)} benchmark artifact(s) match schema v{SCHEMA_VERSION}")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
