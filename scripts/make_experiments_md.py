"""Regenerate EXPERIMENTS.md: paper-vs-measured for every evaluation artifact.

Runs both figures at the paper's dataset size (45,222 rows) plus the
supporting ablations, and writes the markdown report. Invoke from the repo
root:

    python scripts/make_experiments_md.py [--rows N] [--out EXPERIMENTS.md]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.core.disclosure import min_k_to_breach
from repro.core.minimize1 import Minimize1Solver
from repro.core.minimize2 import min_ratio_table
from repro.data.adult import ADULT_SCHEMA, ADULT_SIZE
from repro.data.hierarchies import adult_hierarchies
from repro.experiments.fig5 import run_figure5
from repro.experiments.fig6 import run_figure6
from repro.experiments.runner import default_adult_table
from repro.generalization.apply import bucketize_at
from repro.generalization.lattice import GeneralizationLattice
from repro.generalization.search import SearchStats, find_minimal_safe_nodes
from repro.core.safety import SafetyChecker


def fig5_section(table) -> str:
    start = time.time()
    result = run_figure5(table)
    elapsed = time.time() - start
    lines = [
        "## Figure 5 — maximum disclosure vs. number of conjuncts",
        "",
        "Anonymization: Age generalized to 20-year intervals, all other",
        f"quasi-identifiers suppressed (lattice node `{result.node}`,",
        f"{result.num_buckets} buckets, {result.num_rows} rows; computed in "
        f"{elapsed:.2f}s).",
        "",
        "Paper (read off the plot, real Adult data): both curves start near",
        "0.3 at k=0; the implication curve dominates the negation curve with",
        "a visible but small gap through the middle k range; both approach 1",
        "by k≈12-13 (14 occupation values).",
        "",
        "Measured (synthetic Adult, DESIGN.md §4):",
        "",
        "| k | implications | negated atoms | gap |",
        "|---|--------------|---------------|-----|",
    ]
    for row in result.rows:
        lines.append(
            f"| {row.k} | {row.implication:.4f} | {row.negation:.4f} "
            f"| {row.implication - row.negation:+.4f} |"
        )
    lines += [
        "",
        "Shape checks (asserted in `benchmarks/bench_fig5.py`): both series",
        "monotone in k; implication >= negation everywhere; strictly positive",
        "gap at intermediate k; certainty reached within the domain bound.",
        "",
    ]
    return "\n".join(lines)


def fig6_section(table) -> str:
    start = time.time()
    result = run_figure6(table)
    elapsed = time.time() - start
    lines = [
        "## Figure 6 — min bucket entropy vs. least max disclosure",
        "",
        f"All 72 lattice anonymizations of the {result.num_rows}-row table",
        f"(computed in {elapsed:.2f}s; natural-log entropy).",
        "",
        "Paper (read off the plot): for every k in {1,3,5,7,9,11} the least",
        "worst-case disclosure decreases monotonically in h over [1, 2.4];",
        "curves for larger k sit strictly higher; at h≈2.4 the k=1 curve is",
        "near 0.1-0.15 while k=11 remains near 1.",
        "",
        "Measured envelope endpoints (h >= 1 to match the paper's x-range):",
        "",
        "| k | disclosure at min h | disclosure at max h | decreasing trend |",
        "|---|--------------------|---------------------|------------------|",
    ]
    for k in result.ks:
        envelope = [e for e in result.envelope(k) if e[0] >= 1.0]
        first_h, first_d = envelope[0]
        last_h, last_d = envelope[-1]
        # Count adjacent increases in the envelope (noise indicator).
        increases = sum(
            1 for (_, a), (_, b) in zip(envelope, envelope[1:]) if b > a + 1e-9
        )
        trend = f"{len(envelope) - 1 - increases}/{len(envelope) - 1} steps down"
        lines.append(
            f"| {k} | {first_d:.4f} (h={first_h:.2f}) "
            f"| {last_d:.4f} (h={last_h:.2f}) | {trend} |"
        )
    lines += [
        "",
        "Full per-k envelopes (h, least max disclosure):",
        "",
    ]
    for k in result.ks:
        envelope = [e for e in result.envelope(k) if e[0] >= 1.0]
        series = ", ".join(f"({h:.2f}, {d:.3f})" for h, d in envelope)
        lines.append(f"- k={k}: {series}")
    lines.append("")
    return "\n".join(lines)


def search_section(table) -> str:
    lattice = GeneralizationLattice(
        adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
    )
    checker = SafetyChecker(0.75, 3)
    stats = SearchStats()
    start = time.time()
    minimal = find_minimal_safe_nodes(
        lattice,
        lambda node: checker.is_safe(bucketize_at(table, lattice, node)),
        stats=stats,
    )
    elapsed = time.time() - start
    lines = [
        "## Section 3.4 — lattice search for minimal (c,k)-safe nodes",
        "",
        "Paper: the (c,k)-safety check replaces the k-anonymity check inside",
        "Incognito-style search; monotonicity (Theorem 14) justifies pruning.",
        "",
        f"Measured at c=0.75, k=3 on {len(table)} rows: "
        f"{len(minimal)} minimal safe node(s) "
        f"{[tuple(n) for n in minimal]}; {stats.predicate_checks} safety",
        f"checks + {stats.pruned} pruned of {stats.nodes_total} nodes; "
        f"{checker.cache_hits} signature-cache hits; {elapsed:.2f}s.",
        "",
    ]
    return "\n".join(lines)


def incognito_section(table) -> str:
    from repro.generalization.incognito import (
        IncognitoStats,
        incognito_minimal_safe_nodes,
    )

    lattice = GeneralizationLattice(
        adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
    )
    single_checker = SafetyChecker(0.75, 3)
    single_stats = SearchStats()
    start = time.time()
    single = find_minimal_safe_nodes(
        lattice,
        lambda node: single_checker.is_safe(
            bucketize_at(table, lattice, node)
        ),
        stats=single_stats,
    )
    single_time = time.time() - start

    multi_checker = SafetyChecker(0.75, 3)
    multi_stats = IncognitoStats()
    start = time.time()
    multi = incognito_minimal_safe_nodes(
        table, lattice, multi_checker.is_safe, stats=multi_stats
    )
    multi_time = time.time() - start
    assert set(multi) == set(single)

    lines = [
        "## Incognito modification — multi-phase vs. single-phase",
        "",
        "Paper: \"we can modify the Incognito algorithm ... by simply",
        "replacing the check for k-anonymity with the check for",
        "(c,k)-safety.\" Subset-phase pruning is sound by Theorem 14",
        "(projections onto fewer quasi-identifiers are coarser).",
        "",
        "| search | full-lattice safety checks | total checks | wall time |",
        "|--------|---------------------------|--------------|-----------|",
        f"| single-phase sweep | {single_stats.predicate_checks} | "
        f"{single_stats.predicate_checks} | {single_time:.2f}s |",
        f"| multi-phase Incognito | {multi_stats.final_phase_evaluated} | "
        f"{multi_stats.evaluated} | {multi_time:.2f}s |",
        "",
        f"Both return the same {len(single)} minimal (0.75, 3)-safe nodes.",
        "",
    ]
    return "\n".join(lines)


def conjecture_section(table) -> str:
    lattice = GeneralizationLattice(
        adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
    )
    bucketization = bucketize_at(table, lattice, (3, 2, 1, 1))
    signatures = [b.signature for b in bucketization.buckets]
    solver = Minimize1Solver()
    k = 7
    full = min_ratio_table(signatures, k, solver=solver)[k]
    single = min(
        solver.minimum(sig, k + 1) * sum(sig) / sig[0]
        for sig in set(signatures)
    )
    agree = abs(full - single) < 1e-12
    lines = [
        "## Observed property — single-bucket concentration (not in the paper)",
        "",
        "Across 4,000 randomized instances and every Adult anonymization we",
        "measured, the minimizing placement of MINIMIZE2 concentrates all",
        "k antecedent atoms and the consequent in a single bucket, i.e.",
        "`min_b MINIMIZE1(b, k+1) * n_b / n_b(s0)` equals the full",
        "cross-bucket DP. The paper does not claim this and the library",
        "always runs the general DP; `benchmarks/bench_single_bucket_conjecture.py`",
        "re-checks it on every run.",
        "",
        f"On node (3,2,1,1) ({len(signatures)} buckets, k={k}): full DP = "
        f"{full:.6f}, single-bucket = {single:.6f}, agree = {agree}.",
        "",
    ]
    return "\n".join(lines)


def breach_section(table) -> str:
    lattice = GeneralizationLattice(
        adult_hierarchies(), ADULT_SCHEMA.quasi_identifiers
    )
    lines = [
        "## Attacker power to breach — supplementary sweep",
        "",
        "Minimum k at which max disclosure reaches 0.9 / 1.0 per node height",
        "(bound: one less than the largest number of distinct values in a",
        "bucket; 14 occupations ⇒ at most 13).",
        "",
        "| node | buckets | k for ≥0.9 | k for 1.0 |",
        "|------|---------|-----------|-----------|",
    ]
    for node in [(0, 0, 0, 0), (2, 1, 0, 0), (3, 2, 1, 1), (5, 2, 1, 1)]:
        bucketization = bucketize_at(table, lattice, node)
        k90 = min_k_to_breach(bucketization, 0.9)
        k100 = min_k_to_breach(bucketization, 1.0)
        lines.append(f"| {node} | {len(bucketization)} | {k90} | {k100} |")
    lines.append("")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--rows", type=int, default=ADULT_SIZE)
    parser.add_argument("--out", type=str, default="EXPERIMENTS.md")
    args = parser.parse_args()

    table = default_adult_table(args.rows)
    header = "\n".join(
        [
            "# EXPERIMENTS — paper vs. measured",
            "",
            "Reproduction of the evaluation of *Worst-Case Background",
            "Knowledge for Privacy-Preserving Data Publishing* (ICDE 2007).",
            "The paper's evaluation section contains two figures and no",
            "tables; both are regenerated below, plus the complexity and",
            "search claims of Sections 3.3-3.4 (timed in `benchmarks/`).",
            "",
            f"Dataset: synthetic Adult projection, {len(table)} rows, seed",
            "20070419 (see DESIGN.md §4 for the substitution rationale;",
            "`repro.data.loader.load_adult_file` drops in the real data).",
            "Absolute numbers differ from the paper's (different underlying",
            "histograms); every *shape* claim is reproduced and asserted in",
            "the benchmark suite.",
            "",
        ]
    )
    sections = [
        header,
        fig5_section(table),
        fig6_section(table),
        search_section(table),
        incognito_section(table),
        conjecture_section(table),
        breach_section(table),
    ]
    Path(args.out).write_text("\n".join(sections))
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
