#!/usr/bin/env python3
"""Doc-drift gate: the guides in docs/ must match the code they describe.

Two cross-checks, both against the living registries rather than string
expectations:

1. **Endpoint table** — the table in ``docs/wire-protocol.md`` must list
   exactly the routes :mod:`repro.service.server` registers
   (``ROUTES`` + ``PREFIX_ROUTES``). A parameterized route like
   ``/releases/{table}/{version}`` documents a prefix route by starting
   with its prefix. Missing, stale and verb-mismatched rows all fail.

2. **CLI subcommands** — every subcommand wired into ``repro.cli`` must
   be mentioned (backticked) somewhere in the docs tier, so ``repro
   --help`` never knows commands the documentation does not.

Run from anywhere: ``python scripts/check_docs.py`` (CI runs it in the
``lint-invariants`` job). ``--docs-dir`` points at an alternative docs
tree, which is how ``tests/test_docs.py`` exercises the failure paths.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import _COMMANDS  # noqa: E402
from repro.service.server import PREFIX_ROUTES, ROUTES  # noqa: E402

#: A table row like ``| `/disclosure` | POST | ... |``.
ENDPOINT_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|\s*([A-Z]+)\s*\|")


def documented_endpoints(wire_doc: str) -> list[tuple[str, str]]:
    """``(method, path)`` pairs parsed from the endpoint table."""
    found = []
    for line in wire_doc.splitlines():
        match = ENDPOINT_ROW.match(line)
        if match and match.group(1).startswith("/"):
            found.append((match.group(2), match.group(1)))
    return found


def check_endpoints(docs_dir: Path) -> list[str]:
    """Bidirectional diff between the docs table and the server routes."""
    wire_path = docs_dir / "wire-protocol.md"
    if not wire_path.is_file():
        return [f"missing {wire_path}"]
    documented = documented_endpoints(wire_path.read_text(encoding="utf-8"))
    if not documented:
        return [f"{wire_path}: no endpoint table rows found"]

    errors = []
    # Every registered route must be documented (with the right verb).
    for path, (method, _handler) in ROUTES.items():
        if (method, path) not in documented:
            errors.append(
                f"{wire_path}: registered route {method} {path} is not in "
                "the endpoint table"
            )
    for prefix, (method, _handler) in PREFIX_ROUTES.items():
        if not any(
            m == method and p.startswith(prefix) for m, p in documented
        ):
            errors.append(
                f"{wire_path}: registered prefix route {method} {prefix}... "
                "has no endpoint-table row starting with the prefix"
            )

    # Every documented row must correspond to a registered route.
    for method, path in documented:
        exact = ROUTES.get(path)
        if exact is not None:
            if exact[0] != method:
                errors.append(
                    f"{wire_path}: {path} documented as {method} but "
                    f"registered as {exact[0]}"
                )
            continue
        prefix_hit = next(
            (
                reg
                for prefix, reg in PREFIX_ROUTES.items()
                if path.startswith(prefix)
            ),
            None,
        )
        if prefix_hit is None:
            errors.append(
                f"{wire_path}: documented endpoint {method} {path} is not "
                "a registered route"
            )
        elif prefix_hit[0] != method:
            errors.append(
                f"{wire_path}: {path} documented as {method} but its "
                f"prefix route is {prefix_hit[0]}"
            )
    return errors


def check_cli_commands(docs_dir: Path) -> list[str]:
    """Every ``repro`` subcommand must be backticked somewhere in docs/."""
    corpus = "\n".join(
        path.read_text(encoding="utf-8")
        for path in sorted(docs_dir.glob("*.md"))
    )
    if not corpus:
        return [f"no markdown files under {docs_dir}"]
    errors = []
    for command in _COMMANDS:
        if not re.search(rf"`[^`]*\b{re.escape(command)}\b[^`]*`", corpus):
            errors.append(
                f"CLI subcommand {command!r} is not mentioned (backticked) "
                f"in any markdown file under {docs_dir}"
            )
    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--docs-dir",
        type=Path,
        default=REPO_ROOT / "docs",
        help="docs tree to check (default: the repo's docs/)",
    )
    args = parser.parse_args(argv)

    errors = check_endpoints(args.docs_dir)
    errors.extend(check_cli_commands(args.docs_dir))
    for error in errors:
        print(f"check_docs: {error}", file=sys.stderr)
    if not errors:
        routes = len(ROUTES) + len(PREFIX_ROUTES)
        print(
            f"check_docs: ok — {routes} routes and {len(_COMMANDS)} CLI "
            f"subcommands documented in {args.docs_dir}"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
